"""Bit-exact steady-state loop replay (the busy-cycle fast path, level 2).

The paper's workloads spend most of their simulated time re-executing
identical strip-mined loop iterations: partition decisions only happen at
iteration boundaries (§6, Fig. 9), and between phase-changing points the
machine settles into a *steady state* whose per-iteration timing repeats
exactly (the ECM observation that steady-loop time is affine in the
iteration count).  This module exploits that: once a loop's timing
signature has stabilised, whole iterations are replayed from a recorded
**event template** instead of being re-simulated cycle by cycle.

Design — record, verify, replay, roll back:

* **Detection.**  Scalar cores report taken backward branches
  (:attr:`ScalarCore.on_backedge`).  When one backedge site fires with a
  constant cycle interval ``P`` several times in a row, the machine is a
  candidate for steady state with period ``P``.
* **Recording.**  For one whole period the controller mirrors every
  externally visible engine decision into a template: scalar retires
  (pc + outcome), out-of-order dispatches (entry identity, operand width,
  completion time), in-order commits, per-cycle stall/overhead
  attributions, idle-cycle fast-forward jumps and CTS ownership switches.
  Entries are named by their sequence number *relative to the period
  start*, and completion times relative to the period base cycle, so the
  template is position-independent.
* **Replay.**  At each subsequent period boundary the controller checks a
  *boundary signature* (relative pool contents and readiness, pending
  scalar write-backs, store-queue occupancy, renamer freelists, dispatch
  rotation, CTS state) and then re-applies the template: decoded scalar
  handlers run for real (so register values, memory images and new pool
  entries are exact), ``LoadStoreUnit.issue`` runs for real (so cache
  tags, LRU state, MOB ordering and bandwidth queues evolve exactly as
  the slow path would), and only the *decisions* — which entry dispatches
  or commits when — come from the template.  Every applied event is
  verified against the live state (program counters, outcomes, readiness,
  renamer grants, completion times); because all completions are verified
  to land at the recorded relative cycles, the slow path is guaranteed to
  have made exactly the scripted decisions, so the replayed machine state
  is bit-identical to cycle-by-cycle simulation.
* **Rollback.**  The whole period is applied inside a transaction
  (:class:`MachineTxn`): caches journal lazily per set, every other
  touched structure is snapshotted.  Any verification mismatch — the loop
  epilogue, a VL reconfiguration, a co-runner's phase change landing —
  aborts the period, restores the exact pre-period state and drops back
  to cycle-by-cycle simulation.

EM-SIMD instructions (``MSR <OI>``/``MSR <VL>``) *executing* during the
recorded period poison the template, so lane re-partitioning always takes
the slow path.  ``REPRO_NO_LOOP_REPLAY=1`` (or ``fast_path=False``)
disables the whole mechanism; the determinism suite pins both switches
against each other.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.coproc.coprocessor import LONG_LATENCY, SharingMode
from repro.coproc.dynamic import EntryKind, EntryState

#: Period bounds, in cycles.  The lower bound rejects degenerate loops;
#: the upper bound caps template memory and rollback cost (co-runner
#: pairs routinely lock into joint patterns spanning 16+ iterations of
#: each individual loop, so this is deliberately generous).
MIN_PERIOD = 2
MAX_PERIOD = 4096

#: Verification failures on a backedge site before it is suspended.
MAX_SITE_FAILS = 4

#: Cycles to wait after a failed template before watching for loops again.
COOLDOWN_CYCLES = 512

#: Futility budget: probes (signature computations at backedge cycles)
#: that neither resume a saved template nor arm a recording, before the
#: probe stride doubles.  Keeps the fast path near-zero-overhead on
#: workloads whose state never recurs (irregular phases, CTS quantum
#: interleavings) — the stride resets the moment a replay succeeds.
FUTILE_PROBE_LIMIT = 256
MAX_PROBE_STRIDE = 256

#: Suspension after ``MAX_SITE_FAILS`` failures.  Early failures are
#: usually warm-up drift (bandwidth backlog and pool occupancy still
#: settling), so a site gets another chance once the machine has had time
#: to reach steady state; repeated suspension re-arms at the longest
#: escalated period.
SUSPEND_CYCLES = 4096


def default_loop_replay() -> bool:
    """Whether :meth:`Machine.run` replays steady loops by default.

    On unless ``REPRO_NO_LOOP_REPLAY`` is set (to any non-empty value);
    replay-on and replay-off are bit-identical — the switch exists for the
    determinism layer and for debugging the replay engine itself.
    """
    return not os.environ.get("REPRO_NO_LOOP_REPLAY")


@dataclass
class ReplayProfile:
    """Simulated-cycle attribution for one run (the ``--profile`` report)."""

    total_cycles: int = 0
    interpreted_cycles: int = 0
    fastforward_cycles: int = 0
    replayed_cycles: int = 0
    replayed_periods: int = 0
    templates_built: int = 0
    replay_aborts: int = 0
    #: Per-component (core complex) cycle attribution from the tickless
    #: event-wheel engine: cycles stepped with at least one event, cycles
    #: stepped with none, and cycles skipped while asleep.  All-zero when
    #: the event wheel is off (``REPRO_NO_EVENT_WHEEL``).
    component_busy: List[int] = field(default_factory=list)
    component_idle: List[int] = field(default_factory=list)
    component_asleep: List[int] = field(default_factory=list)
    #: Batch-execute backend attribution: per-core-cycle dispatch calls
    #: handled by the opcode-grouped plan/apply path vs. routed through the
    #: scalar per-entry fallback, and uops issued via groups.  All-zero
    #: when the batch backend is off (``REPRO_NO_BATCH_EXEC``).
    batched_dispatch_calls: int = 0
    scalar_dispatch_calls: int = 0
    batched_uops: int = 0

    def merge(self, other: "ReplayProfile") -> None:
        self.total_cycles += other.total_cycles
        self.interpreted_cycles += other.interpreted_cycles
        self.fastforward_cycles += other.fastforward_cycles
        self.replayed_cycles += other.replayed_cycles
        self.replayed_periods += other.replayed_periods
        self.templates_built += other.templates_built
        self.replay_aborts += other.replay_aborts
        self.batched_dispatch_calls += other.batched_dispatch_calls
        self.scalar_dispatch_calls += other.scalar_dispatch_calls
        self.batched_uops += other.batched_uops
        self.component_busy = _merge_padded(self.component_busy, other.component_busy)
        self.component_idle = _merge_padded(self.component_idle, other.component_idle)
        self.component_asleep = _merge_padded(
            self.component_asleep, other.component_asleep
        )

    def report(self) -> str:
        """Human-readable attribution table."""
        total = max(1, self.total_cycles)

        def pct(part: int) -> str:
            return f"{100.0 * part / total:5.1f}%"

        lines = [
            "simulated-cycle attribution:",
            f"  total cycles        {self.total_cycles:>12}",
            f"  interpreted         {self.interpreted_cycles:>12}  {pct(self.interpreted_cycles)}",
            f"  fast-forwarded      {self.fastforward_cycles:>12}  {pct(self.fastforward_cycles)}",
            f"  loop-replayed       {self.replayed_cycles:>12}  {pct(self.replayed_cycles)}",
            f"  replayed periods    {self.replayed_periods:>12}",
            f"  templates built     {self.templates_built:>12}",
            f"  replay aborts       {self.replay_aborts:>12}",
        ]
        if any(self.component_busy) or any(self.component_asleep):
            lines.append("per-component stepped cycles (event-wheel engine):")
            for core in range(len(self.component_busy)):
                busy = self.component_busy[core]
                idle = self.component_idle[core]
                asleep = (
                    self.component_asleep[core]
                    if core < len(self.component_asleep)
                    else 0
                )
                lines.append(
                    f"  core {core}   busy {busy:>12}  idle-stepped {idle:>12}"
                    f"  asleep {asleep:>12}"
                )
        if self.batched_dispatch_calls or self.scalar_dispatch_calls:
            calls = max(1, self.batched_dispatch_calls + self.scalar_dispatch_calls)
            share = 100.0 * self.batched_dispatch_calls / calls
            lines.append("batch-execute backend (per-core dispatch calls):")
            lines.append(
                f"  batched             {self.batched_dispatch_calls:>12}  {share:5.1f}%"
            )
            lines.append(
                f"  scalar fallback     {self.scalar_dispatch_calls:>12}"
            )
            lines.append(f"  uops in groups      {self.batched_uops:>12}")
        return "\n".join(lines)


def _merge_padded(mine: List[int], theirs: List[int]) -> List[int]:
    """Element-wise sum, padding the shorter list with zeros."""
    if not theirs:
        return mine
    if not mine:
        return list(theirs)
    size = max(len(mine), len(theirs))
    return [
        (mine[i] if i < len(mine) else 0) + (theirs[i] if i < len(theirs) else 0)
        for i in range(size)
    ]


#: Process-wide aggregate over every completed run (CLI ``--profile``).
#: Sweeps fanned out over worker processes contribute only the runs that
#: executed in this process.
GLOBAL_PROFILE = ReplayProfile()


class _Mismatch(Exception):
    """A replayed event diverged from the live machine state."""


@dataclass(eq=False)
class _Template:
    """One recorded steady-state period, compiled for fast application.

    Recording captures per-cycle event lists with tuples (all entry ids
    and completion times relative to the period base):
    ``("x", core, pc, outcome, target)`` scalar retire;
    ``("d", core, rel_seq, vl_lanes, amount, rel_complete)`` dispatch;
    ``("c", core, rel_seq)`` commit; ``("s", core, reason)`` stall;
    ``("o", core, kind)`` overhead cycle; ``("f", skipped)`` fast-forward
    jump; ``("t", owner, rel_until, rel_blocked)`` CTS ownership switch.
    Finalisation splits them into the *timed* stream (x/d/c/t — these
    mutate machine state at a specific cycle and carry the verification)
    and pre-summed counter totals (s/o/f are order-independent
    increments, so one period applies them in bulk).
    """

    period: int
    #: ``(offset, event)`` pairs for x/d/c/t events, in recording order.
    timed: List[Tuple[int, tuple]]
    #: Summed stall attributions: ``(core, reason) -> count`` per period
    #: (fast-forward-elided repeats already multiplied in).
    stall_totals: Dict[tuple, int]
    #: Summed overhead cycles: ``(core, kind) -> count`` per period.
    overhead_totals: Dict[tuple, int]
    #: Boundary signature the machine must match for the template to apply.
    sig: tuple
    #: Relative cycle of the last progress event (drives the run loop's
    #: deadlock accounting after a replayed span).
    progress_offset: int
    #: Backedge site that triggered the recording (failure accounting).
    site: Optional[tuple] = None


class MachineTxn:
    """Transactional snapshot of everything one replayed period may touch."""

    def __init__(self, machine) -> None:
        self.machine = machine
        coproc = machine.coproc
        coproc.memory.begin_txn()
        self._pools = [pool.snapshot() for pool in coproc.pools]
        self._lsus = [lsu.snapshot() for lsu in coproc.lsus]
        self._renamer = coproc.renamer.snapshot()
        self._metrics = machine.metrics.snapshot()
        self._coproc = (
            coproc._seq,
            coproc._rotate,
            coproc._cts_owner,
            coproc._cts_until,
            coproc._cts_blocked_until,
            coproc.cts_switches,
        )
        self._cores = []
        for core in machine.cores:
            if core is None:
                self._cores.append(None)
            else:
                self._cores.append(core.replay_snapshot())
                core._undo_log = []

    def commit(self) -> None:
        self.machine.coproc.memory.commit_txn()
        for core in self.machine.cores:
            if core is not None:
                core._undo_log = None
        # The replayed period mutated entries behind the ready-set index
        # (template-scripted issues bypass the waiter notifications).
        for pool in self.machine.coproc.pools:
            pool.mark_dirty()

    def rollback(self) -> None:
        machine = self.machine
        coproc = machine.coproc
        coproc.memory.abort_txn()
        for pool, snap in zip(coproc.pools, self._pools):
            pool.restore(snap)  # restore() also dirties the ready-set index
        for lsu, snap in zip(coproc.lsus, self._lsus):
            lsu.restore(snap)
        coproc.renamer.restore(self._renamer)
        machine.metrics.restore(self._metrics)
        (
            coproc._seq,
            coproc._rotate,
            coproc._cts_owner,
            coproc._cts_until,
            coproc._cts_blocked_until,
            coproc.cts_switches,
        ) = self._coproc
        for core, snap in zip(machine.cores, self._cores):
            if core is None:
                continue
            # Undo in-place memory-image writes newest-first.
            for array, index, old in reversed(core._undo_log):
                array[index : index + len(old)] = old
            core._undo_log = None
            core.replay_restore(snap)


class ReplayController:
    """Per-run driver: detection, recording, verified replay.

    One instance is created by :meth:`Machine.run` when the fast path is
    enabled; :meth:`on_cycle` is called at the top of every run-loop
    iteration and may return an advanced cycle after replaying whole
    periods.
    """

    _IDLE, _RECORD, _REPLAY = 0, 1, 2

    def __init__(self, machine) -> None:
        self.machine = machine
        self.state = self._IDLE
        self.profile = ReplayProfile()
        # Signature-recurrence watching (see :meth:`on_backedge`):
        # signature hash -> (last cycle seen, last recurrence distance).
        self._sig_seen: Dict[int, Tuple[int, int]] = {}
        #: Retired-but-reusable templates, newest last.  A loop disturbed
        #: by a periodic epilogue (an array pass's short tail chunk, a
        #: co-runner phase change) re-enters the very same steady state a
        #: few iterations later; resuming the saved template skips the
        #: whole detect-and-record latency on every pass.
        self._saved: List[_Template] = []
        self._site_fails: Dict[tuple, int] = {}
        self._blacklist: set = set()
        self._suspended: Dict[tuple, int] = {}
        self._cooldown_until = 0
        # Probe-futility throttle (see FUTILE_PROBE_LIMIT).
        self._futile_probes = 0
        self._probe_stride = 1
        self._backedge_count = 0
        # Probe request / in-progress recording.
        self._probe_at = -1
        self._probe_site: Optional[tuple] = None
        self._arm_site: Optional[tuple] = None
        self._period = 0
        self._base = 0
        self._base_seq = 0
        self._events: List[List[tuple]] = []
        self._sig: Optional[tuple] = None
        self._poisoned = False
        self._template: Optional[_Template] = None
        for core in machine.cores:
            if core is not None:
                core.on_backedge = self.on_backedge

    @property
    def engaged(self) -> bool:
        """True while the controller is probing, recording or replaying.

        The tickless scheduler suspends per-component sleeping whenever the
        controller is engaged: probes read full-machine signatures,
        recording needs every component's live events, and replayed spans
        advance the clock past any sleeper's bookkeeping.
        """
        return self.state is not self._IDLE or self._probe_at >= 0
    #
    # The period is found by *observing state recurrence directly* rather
    # than by trusting one core's backedge interval: a backedge requests a
    # signature probe at the next cycle boundary, and when the signature's
    # hash repeats at some distance d the joint machine state has provably
    # (modulo hash collision, which recording verification absorbs) come
    # back around — d is the true period of the whole system, including
    # co-runner interleavings whose combined pattern spans many iterations
    # of each individual loop.

    def on_backedge(self, core: int, from_pc: int, target: int, cycle: int) -> None:
        if self.state is not self._IDLE or self._probe_at >= 0:
            return
        if cycle < self._cooldown_until:
            return
        site = (core, from_pc, target)
        if site in self._blacklist or cycle < self._suspended.get(site, 0):
            return
        self._backedge_count += 1
        if self._backedge_count % self._probe_stride:
            return
        # The backedge fires mid-step with the machine half-advanced; the
        # signature is only meaningful at a cycle boundary, so defer.
        self._probe_at = cycle + 1
        self._probe_site = site

    def _probe(self, cycle: int) -> bool:
        """Check the state at a cycle boundary; may arm a recording.

        Returns True when a saved template's signature matches the current
        state — the caller should replay it immediately, no re-recording
        needed.
        """
        self._probe_at = -1
        sig = self._signature(cycle, self.machine.coproc._seq)
        for template in reversed(self._saved):
            if template.sig == sig:
                self._template = template
                self._arm_site = template.site
                self.state = self._REPLAY
                return True
        self._note_futile(1)
        sig_hash = hash(sig)
        seen = self._sig_seen.get(sig_hash)
        if seen is None:
            self._sig_seen[sig_hash] = (cycle, 0)
            if len(self._sig_seen) > 8192:
                # Warm-up churn: every probe sees a fresh state.  Reset
                # rather than grow without bound; steady state repopulates
                # the map within one period.
                self._sig_seen.clear()
            return False
        seen_cycle, seen_dist = seen
        dist = cycle - seen_cycle
        self._sig_seen[sig_hash] = (cycle, dist)
        # Requiring the same recurrence distance twice in a row filters
        # out coincidental state matches (and hash collisions): a true
        # period produces evenly spaced recurrences.
        if dist != seen_dist or not (MIN_PERIOD <= dist <= MAX_PERIOD):
            return False
        self._arm_site = self._probe_site
        self._period = dist
        self._begin_recording(cycle)
        return False

    def _note_futile(self, weight: int) -> None:
        """Account probe/recording effort that produced no replay."""
        self._futile_probes += weight
        if self._futile_probes >= FUTILE_PROBE_LIMIT:
            self._futile_probes = 0
            if self._probe_stride < MAX_PROBE_STRIDE:
                self._probe_stride *= 2

    # --- recording hooks (installed only while state is RECORD) -------------

    def on_exec(self, core: int, pc: int, outcome: str, target: int) -> None:
        self._events[-1].append(("x", core, pc, outcome, target))

    def on_dispatch(self, core: int, entry) -> None:
        amount = entry.flops if entry.kind is EntryKind.COMPUTE else entry.nbytes
        self._events[-1].append(
            (
                "d",
                core,
                entry.seq - self._base_seq,
                entry.vl_lanes,
                amount,
                entry.complete_cycle - self._base,
            )
        )

    def on_commit(self, core: int, entry) -> None:
        self._events[-1].append(("c", core, entry.seq - self._base_seq))

    def on_stall(self, core: int, reason) -> None:
        self._events[-1].append(("s", core, reason))

    def on_overhead(self, core: int, kind: str) -> None:
        self._events[-1].append(("o", core, kind))

    def on_emsimd(self) -> None:
        # A lane reconfiguration / phase marker executed: not steady state.
        self._poisoned = True

    def on_cts_switch(self, owner: int, until: int, blocked_until: int) -> None:
        self._events[-1].append(
            ("t", owner, until - self._base, blocked_until - self._base)
        )

    def on_core_done(self) -> None:
        self._poisoned = True

    def on_fast_forward(self, skipped: int, capped: bool) -> None:
        if capped:
            # The jump was cut short by the deadlock horizon or the cycle
            # budget — absolute-time state leaked into the schedule.
            self._poisoned = True
            return
        self._events[-1].append(("f", skipped))
        self._events.extend([] for _ in range(skipped))

    # --- per-cycle driver ---------------------------------------------------

    def on_cycle(
        self, cycle: int, max_cycles: int, last_progress: int
    ) -> Tuple[int, int]:
        """Called at the top of every run-loop iteration.

        Returns the (possibly advanced) cycle and last-progress pair the
        run loop should continue from.
        """
        if self.state is self._RECORD:
            offset = cycle - self._base
            if offset == self._period:
                self._finalize()
                if self.state is self._REPLAY:
                    return self._replay_span(cycle, max_cycles, last_progress)
            elif offset > self._period or offset != len(self._events) or self._poisoned:
                self._abandon_recording(cycle)
            else:
                self._events.append([])
        elif self._probe_at == cycle:
            if self._probe(cycle):
                return self._replay_span(cycle, max_cycles, last_progress)
        elif self._probe_at >= 0 and cycle > self._probe_at:
            self._probe_at = -1  # the run loop skipped past the probe point
        return cycle, last_progress

    # --- recording lifecycle ------------------------------------------------

    def _begin_recording(self, cycle: int) -> None:
        self._probe_at = -1
        self.state = self._RECORD
        self._base = cycle
        self._base_seq = self.machine.coproc._seq
        self._events = [[]]
        self._poisoned = False
        self._sig = self._signature(cycle, self._base_seq)
        machine = self.machine
        machine.coproc.recorder = self
        machine.metrics.recorder = self
        machine._loop_recorder = self
        for core in machine.cores:
            if core is not None:
                core.recorder = self

    def _unhook(self) -> None:
        machine = self.machine
        machine.coproc.recorder = None
        machine.metrics.recorder = None
        machine._loop_recorder = None
        for core in machine.cores:
            if core is not None:
                core.recorder = None

    def _abandon_recording(self, cycle: int) -> None:
        self._unhook()
        self.state = self._IDLE
        self._events = []
        self._cooldown_until = cycle + COOLDOWN_CYCLES
        # A wasted recording costs far more than a probe.
        self._note_futile(16)

    def _finalize(self) -> None:
        self._unhook()
        boundary = self._base + self._period
        if self._poisoned:
            self._abandon_recording(boundary)
            return
        timed: List[Tuple[int, tuple]] = []
        stall_totals: Dict[tuple, int] = {}
        overhead_totals: Dict[tuple, int] = {}
        progress_offset = -1
        has_exec = False
        for offset, cycle_events in enumerate(self._events):
            counters_this_cycle: List[tuple] = []
            for event in cycle_events:
                tag = event[0]
                if tag == "s":
                    key = (event[1], event[2])
                    stall_totals[key] = stall_totals.get(key, 0) + 1
                    counters_this_cycle.append(event)
                elif tag == "o":
                    key = (event[1], event[2])
                    overhead_totals[key] = overhead_totals.get(key, 0) + 1
                    counters_this_cycle.append(event)
                elif tag == "f":
                    # Each elided cycle repeats this cycle's counter events.
                    skipped = event[1]
                    for counter in counters_this_cycle:
                        key = (counter[1], counter[2])
                        if counter[0] == "s":
                            stall_totals[key] += skipped
                        else:
                            overhead_totals[key] += skipped
                else:
                    timed.append((offset, event))
                    if tag != "t":
                        progress_offset = offset
                        has_exec = has_exec or tag == "x"
        if not has_exec:
            self._abandon_recording(boundary)
            return
        self._template = _Template(
            period=self._period,
            timed=timed,
            stall_totals=stall_totals,
            overhead_totals=overhead_totals,
            sig=self._sig,
            progress_offset=progress_offset,
            site=self._arm_site,
        )
        self._events = []
        self.profile.templates_built += 1
        self.state = self._REPLAY

    def _retire_template(self, succeeded: bool) -> None:
        site = self._arm_site
        template = self._template
        if site is not None:
            if succeeded:
                self._site_fails.pop(site, None)
                self._suspended.pop(site, None)
            else:
                fails = self._site_fails.get(site, 0) + 1
                self._site_fails[site] = fails
                if fails >= MAX_SITE_FAILS:
                    # Usually warm-up drift or a loop whose register state
                    # (not timing state) is aperiodic — bench the site for a
                    # while and let it retry once the machine has settled.
                    self._suspended[site] = self._base + SUSPEND_CYCLES
                    self._site_fails[site] = 0
                    self._saved = [t for t in self._saved if t.site != site]
        if succeeded and template is not None:
            # Keep proven templates for direct resumption (MRU order).
            if template in self._saved:
                self._saved.remove(template)
            self._saved.append(template)
            del self._saved[:-4]
        self._template = None
        self._arm_site = None
        self.state = self._IDLE

    # --- replay -------------------------------------------------------------

    def _replay_span(
        self, cycle: int, max_cycles: int, last_progress: int
    ) -> Tuple[int, int]:
        """Replay verified whole periods starting at boundary ``cycle``."""
        template = self._template
        assert template is not None
        replayed = 0
        aborted = False
        while cycle + template.period <= max_cycles:
            if self._signature(cycle, self.machine.coproc._seq) != template.sig:
                break
            if not self._replay_period(cycle):
                aborted = True
                break
            last_progress = cycle + template.progress_offset
            cycle += template.period
            replayed += 1
            self.profile.replayed_periods += 1
            self.profile.replayed_cycles += template.period
        if aborted:
            self.profile.replay_aborts += 1
        period = template.period
        self._retire_template(succeeded=replayed > 0)
        if replayed > 0:
            # The fast path is paying off — probe at full rate again.
            self._probe_stride = 1
            self._futile_probes = 0
        if aborted:
            # The divergence point (an array pass's tail chunk, a phase
            # change) spans at most about one period; a short cooldown
            # skips it without losing the next pass's interior.
            self._cooldown_until = cycle + period
        elif replayed == 0:
            # The recurrence that armed this recording was coincidental or
            # the machine is still drifting — back off properly.
            self._cooldown_until = cycle + COOLDOWN_CYCLES
            self._note_futile(16)
        return cycle, last_progress

    def _signature(self, cycle: int, base_seq: int) -> tuple:
        """Decision-relevant machine state, relative to ``cycle``/``base_seq``.

        Captures exactly the state that determines future engine decisions
        (dispatch, commit, stall attribution, scalar stalls) *relative* to
        the boundary: in-flight windows with readiness-gating deps and
        completion offsets, pending scalar write-backs, store-queue
        occupancy, renamer freelists, the dispatch-fairness rotation, done
        flags, open-phase flags and (under CTS) the arbitration window.
        Functional state that only *evolves* — register values, cache tags,
        MOB contents, bandwidth queues — is deliberately excluded: replay
        executes the real operations against it, and completion-time
        verification catches any timing-visible difference.
        """
        machine = self.machine
        coproc = machine.coproc
        pools = []
        for pool in coproc.pools:
            rows = []
            for entry in pool._entries:
                waiting = entry.state is EntryState.WAITING
                rows.append(
                    (
                        entry.seq - base_seq,
                        entry.kind,
                        entry.state,
                        None if waiting else entry.complete_cycle - cycle,
                        entry.holds_phys_reg,
                        tuple(
                            dep.seq - base_seq
                            for dep in entry.deps
                            if dep.state is EntryState.WAITING
                            or dep.complete_cycle > cycle
                        ),
                    )
                )
            pools.append(tuple(rows))
        cores = []
        for core in machine.cores:
            if core is None:
                cores.append(None)
                continue
            pending = []
            for name, entry in core._pending_scalar.items():
                done = (
                    entry.state is not EntryState.WAITING
                    and entry.complete_cycle <= cycle
                )
                pending.append(
                    (name, "done" if done else (entry.state, entry.complete_cycle - cycle))
                )
            pending.sort()
            cores.append((core.pc, core.halted, tuple(pending)))
        stq = []
        for lsu in coproc.lsus:
            # Normalising drain: idempotent, and exactly what this cycle's
            # engine step would do first anyway.
            lsu.on_cycle(cycle)
            stq.append(tuple(c - cycle for c in lsu._store_completions))
        sig = (
            tuple(pools),
            tuple(cores),
            tuple(stq),
            tuple(coproc.renamer._free),
            tuple(coproc.renamer._held),
            coproc._rotate,
            tuple(machine._done),
            tuple(p is not None for p in machine.metrics._open_phase),
        )
        if coproc.mode is SharingMode.COARSE_TEMPORAL:
            sig += (
                (
                    coproc._cts_owner,
                    max(coproc._cts_until - cycle, 0),
                    max(coproc._cts_blocked_until - cycle, 0),
                ),
            )
        return sig

    def _replay_period(self, base: int) -> bool:
        """Apply one template period starting at ``base``; True on success."""
        machine = self.machine
        coproc = machine.coproc
        metrics = machine.metrics
        renamer = coproc.renamer
        template = self._template
        base_seq = coproc._seq
        live = {}
        for pool in coproc.pools:
            for entry in pool._entries:
                live[entry.seq - base_seq] = entry
        txn = MachineTxn(machine)
        # Hot-loop locals: the timed stream runs tens of thousands of events
        # per span, so attribute lookups are hoisted out of the loop.
        compute_latency = coproc.config.vector.compute_latency
        cores = machine.cores
        pools = coproc.pools
        lsus = coproc.lsus
        live_get = live.get
        waiting = EntryState.WAITING
        issued = EntryState.ISSUED
        compute = EntryKind.COMPUTE
        store = EntryKind.STORE
        try:
            for offset, event in template.timed:
                cycle = base + offset
                tag = event[0]
                if tag == "d":
                    _, core_id, rel_seq, vl, amount, rel_complete = event
                    entry = live_get(rel_seq)
                    if (
                        entry is None
                        or entry.state is not waiting
                        or entry.vl_lanes != vl
                        or not entry.ready(cycle)
                    ):
                        raise _Mismatch("dispatch")
                    if entry.kind is compute:
                        if entry.flops != amount:
                            raise _Mismatch("flops")
                        if entry.writes_vreg and not renamer.try_allocate(core_id):
                            raise _Mismatch("rename")
                        entry.holds_phys_reg = entry.writes_vreg
                        entry.state = issued
                        entry.complete_cycle = cycle + (
                            LONG_LATENCY if entry.long_latency else compute_latency
                        )
                        metrics.on_compute_dispatch(
                            core_id, entry.vl_lanes, entry.flops, cycle
                        )
                    else:
                        if entry.nbytes != amount:
                            raise _Mismatch("nbytes")
                        is_store = entry.kind is store
                        lsu = lsus[core_id]
                        if is_store:
                            if lsu.store_queue_full(cycle):
                                raise _Mismatch("stq")
                        elif not renamer.try_allocate(core_id):
                            raise _Mismatch("rename")
                        entry.holds_phys_reg = not is_store
                        result = lsu.issue(entry.addr, entry.nbytes, cycle, is_store)
                        # The keystone check: every completion must land at
                        # its recorded offset, which in turn proves the
                        # engine would repeat every scripted decision
                        # (readiness, commits, stalls).
                        if result.complete_cycle - base != rel_complete:
                            raise _Mismatch("completion")
                        entry.state = issued
                        entry.complete_cycle = result.complete_cycle
                        metrics.on_ldst_dispatch(
                            core_id, entry.vl_lanes, entry.nbytes, cycle
                        )
                elif tag == "x":
                    _, core_id, pc, outcome, target = event
                    core = cores[core_id]
                    if core is None or core.halted:
                        raise _Mismatch("halted")
                    # Labels occupy no retire slot: the interpreter skips
                    # them inline without recording an event, so replay must
                    # hop over them the same way.
                    table = core.decoded
                    pc_now = core.pc
                    while pc_now < len(table) and table[pc_now] is None:
                        pc_now += 1
                    core.pc = pc_now
                    if pc_now != pc:
                        raise _Mismatch("pc")
                    before_seq = coproc._seq
                    got, _kind = table[pc].run(cycle)
                    if got != outcome:
                        raise _Mismatch("outcome")
                    if got == "branch":
                        if core._branch_target != target:
                            raise _Mismatch("target")
                        core.pc = target
                    else:
                        core.pc = pc + 1
                    core.retired += 1
                    if coproc._seq != before_seq:
                        created = pools[core_id]._entries[-1]
                        live[created.seq - base_seq] = created
                elif tag == "c":
                    _, core_id, rel_seq = event
                    pool_entries = pools[core_id]._entries
                    entry = live_get(rel_seq)
                    if (
                        entry is None
                        or not pool_entries
                        or pool_entries[0] is not entry
                        or entry.state is waiting
                        or entry.complete_cycle > cycle
                    ):
                        raise _Mismatch("commit")
                    pools[core_id].pop_head_for_replay()
                    if entry.holds_phys_reg:
                        renamer.release(core_id)
                else:  # "t" — CTS ownership switch
                    _, owner, rel_until, rel_blocked = event
                    coproc._cts_owner = owner
                    coproc._cts_until = base + rel_until
                    coproc._cts_blocked_until = base + rel_blocked
                    coproc.cts_switches += 1
        except (_Mismatch, SimulationError):
            # SimulationError means a handler diverged hard (e.g. an array
            # overrun the recording never hit) — same treatment: the period
            # is not steady state, rewind and let the slow path run it.
            txn.rollback()
            return False
        # Counter events (stalls, EM-SIMD overhead cycles) are pure
        # increments, pre-summed at template build; apply them in bulk.
        for (core_id, reason), count in template.stall_totals.items():
            metrics.stalls[core_id][reason] += count
        for (core_id, kind), count in template.overhead_totals.items():
            if kind == "monitor":
                metrics.monitor_cycles[core_id] += count
            else:
                metrics.reconfig_cycles[core_id] += count
        # The dispatch-fairness rotation advances once per stepped cycle and
        # once per fast-forwarded cycle — exactly ``period`` in total.
        if coproc.mode is not SharingMode.COARSE_TEMPORAL:
            coproc._rotate = (coproc._rotate + template.period) % coproc.config.num_cores
        txn.commit()
        if machine.auditor is not None:
            # Replay-template/live-state agreement: the committed period's
            # resulting state must satisfy every structural invariant.
            machine.auditor.check_replay_commit(base + template.period, template)
        return True
