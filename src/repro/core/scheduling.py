"""OS time-slice scheduling over the elastic co-processor (paper §5).

The paper assumes lane partitioning and task scheduling work
independently: on a context switch the OS saves the five EM-SIMD
dedicated registers once all pipelines (including Occamy's) are drained,
and restores ``<OI>`` with an ``MSR`` — which *triggers a fresh lane
partition* — when the task resumes.  :class:`TimeSliceScheduler`
implements exactly that protocol for more workloads than cores:

* each workload is pinned to ``job_index % num_cores`` (no migration);
* at quantum expiry the outgoing workload stops transmitting, the core's
  SIMD pipeline drains, its ``<OI>``/``<VL>`` are saved, its lanes are
  released (``<VL> = 0``) and the lane manager re-plans for the remaining
  runners;
* at resume the saved ``<OI>`` is written back (re-triggering planning)
  and the saved ``<VL>`` is re-applied; if the lanes are momentarily
  unavailable the resume waits — the program's own partition monitor then
  adjusts toward the new plan at its next lazy point (Fig. 9), so the
  workload code needs no scheduler awareness at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.coproc.coprocessor import CoProcessor, SharingMode
from repro.coproc.metrics import Metrics
from repro.core.machine import Job
from repro.core.policies import Policy
from repro.core.scalar_core import ScalarCore
from repro.isa.registers import OIValue


class EventWheel:
    """Bucketed wake-cycle index for the tickless run loop.

    Each sleeping component registers the earliest future cycle at which
    its externally observable behaviour can change (its *wake cycle*); the
    run loop asks :meth:`due` which components must be settled and stepped
    at the current cycle and :meth:`next_wake` how far the global clock may
    jump when everything is asleep.  Wakes are hashed into fixed-size
    buckets (``cycle % slots``) so the common exact-cycle lookup touches one
    small set; wakes the clock jumped past (always settled before further
    stepping) are recovered by a full scan, which is tiny because at most
    one entry per component exists.

    Early wakes are harmless (the component re-sleeps); late wakes are
    forbidden — the bit-exactness of the tickless engine rests on every
    component's wake being a lower bound on its next state change.
    """

    def __init__(self, slots: int = 256) -> None:
        if slots < 1:
            raise ConfigurationError("event wheel needs at least one slot")
        self._slots = slots
        self._buckets: List[set] = [set() for _ in range(slots)]
        self._wake: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._wake)

    def schedule(self, component: int, cycle: int) -> None:
        """Register (or move) ``component``'s wake to ``cycle``."""
        self.cancel(component)
        self._wake[component] = cycle
        self._buckets[cycle % self._slots].add(component)

    def cancel(self, component: int) -> None:
        """Drop ``component``'s wake, if any (idempotent)."""
        wake = self._wake.pop(component, None)
        if wake is not None:
            self._buckets[wake % self._slots].discard(component)

    def wake_of(self, component: int) -> Optional[int]:
        """The registered wake cycle, or ``None`` if not scheduled."""
        return self._wake.get(component)

    def next_wake(self) -> Optional[int]:
        """Earliest registered wake across all components, or ``None``."""
        return min(self._wake.values()) if self._wake else None

    def due(self, cycle: int) -> List[int]:
        """Pop and return components whose wake is ``<= cycle``, sorted."""
        if not self._wake:
            return []
        bucket = self._buckets[cycle % self._slots]
        out = [c for c in bucket if self._wake[c] == cycle]
        if any(w < cycle for w in self._wake.values()):
            out.extend(c for c, w in self._wake.items() if w < cycle)
        for component in out:
            self.cancel(component)
        return sorted(out)


class HierarchicalEventWheel:
    """Two-level wake index: per-complex-group heaps under a top heap.

    Drop-in replacement for :class:`EventWheel` (same ``schedule`` /
    ``cancel`` / ``wake_of`` / ``next_wake`` / ``due`` contract) whose
    per-call cost tracks the number of *scheduled* components, not the
    machine size.  Components are grouped into complexes of
    ``group_size``; each group keeps a lazy min-heap of ``(wake,
    component)`` entries and the top level keeps a lazy min-heap of
    ``(wake, group)`` entries.  ``_wake`` is the ground truth — an entry
    in either heap is valid only while ``_wake[component]`` still equals
    its recorded cycle, so cancels and reschedules are O(1) (stale
    entries are discarded when they surface at a heap top).

    Correctness of the laziness: every :meth:`schedule` pushes into both
    heaps, so the currently valid minimum of every group always has a
    live top-level entry with the same cycle; heap order therefore
    surfaces the true global minimum before any later valid entry, and
    popping stale or duplicate entries can never skip it.

    A 32-core machine with every complex asleep answers
    :meth:`next_wake` from the top heap in O(1) amortised, and
    :meth:`due` touches only the groups that actually have wakes at or
    before the queried cycle — the reference wheel's overshoot recovery
    rescans every registered component instead.
    """

    def __init__(self, group_size: int = 4) -> None:
        if group_size < 1:
            raise ConfigurationError("complex group size must be positive")
        self._group_size = group_size
        self._wake: Dict[int, int] = {}
        #: group id -> lazy min-heap of (wake cycle, component).
        self._groups: Dict[int, List[Tuple[int, int]]] = {}
        #: lazy min-heap of (wake cycle, group id).
        self._top: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._wake)

    def _group_of(self, component: int) -> int:
        return component // self._group_size

    def schedule(self, component: int, cycle: int) -> None:
        """Register (or move) ``component``'s wake to ``cycle``."""
        self._wake[component] = cycle
        group = self._group_of(component)
        heappush(self._groups.setdefault(group, []), (cycle, component))
        heappush(self._top, (cycle, group))

    def cancel(self, component: int) -> None:
        """Drop ``component``'s wake, if any (idempotent, O(1) — the heap
        entries become stale and are discarded lazily)."""
        self._wake.pop(component, None)

    def wake_of(self, component: int) -> Optional[int]:
        """The registered wake cycle, or ``None`` if not scheduled."""
        return self._wake.get(component)

    def next_wake(self) -> Optional[int]:
        """Earliest registered wake across all components, or ``None``."""
        wake = self._wake
        if not wake:
            return None
        top = self._top
        groups = self._groups
        while top:
            cycle, group = top[0]
            heap = groups.get(group)
            while heap and wake.get(heap[0][1]) != heap[0][0]:
                heappop(heap)  # stale: cancelled or rescheduled
            if not heap:
                groups.pop(group, None)
                heappop(top)
                continue
            if heap[0][0] == cycle:
                return cycle
            # This top entry is stale (the group's min moved); the live
            # minimum pushed its own top entry, so popping is safe.
            heappop(top)
        return None

    def due(self, cycle: int) -> List[int]:
        """Pop and return components whose wake is ``<= cycle``, sorted."""
        wake = self._wake
        if not wake:
            return []
        out: List[int] = []
        top = self._top
        groups = self._groups
        while top and top[0][0] <= cycle:
            _, group = heappop(top)
            heap = groups.get(group)
            if heap is None:
                continue
            while heap and heap[0][0] <= cycle:
                entry_cycle, component = heappop(heap)
                if wake.get(component) == entry_cycle:
                    del wake[component]
                    out.append(component)
            if not heap:
                groups.pop(group, None)
        return sorted(out)


@dataclass
class _Task:
    """One schedulable workload and its saved EM-SIMD context."""

    job: Job
    core_id: int
    scalar: Optional[ScalarCore] = None
    saved_oi: OIValue = OIValue.ZERO
    saved_vl: int = 0
    finished: bool = False
    finish_cycle: Optional[int] = None
    scheduled_cycles: int = 0
    switches: int = 0


@dataclass
class ScheduleResult:
    """Outcome of a scheduled run."""

    total_cycles: int
    metrics: Metrics
    finish_cycles: List[Optional[int]]
    scheduled_cycles: List[int]
    context_switches: int

    def turnaround(self, task_index: int) -> int:
        finish = self.finish_cycles[task_index]
        return finish if finish is not None else self.total_cycles


class TimeSliceScheduler:
    """Round-robin time slicing of M workloads over C cores (M >= C)."""

    def __init__(
        self,
        config: MachineConfig,
        policy: Policy,
        jobs: Sequence[Job],
        quantum: int = 4000,
    ) -> None:
        if policy.mode is not SharingMode.SPATIAL:
            raise ConfigurationError(
                "the scheduling protocol saves/restores spatial lane "
                "contexts; use a spatial policy (private/vls/occamy)"
            )
        if quantum < 100:
            raise ConfigurationError("quantum must be at least 100 cycles")
        if not jobs:
            raise ConfigurationError("need at least one job")
        self.config = config
        self.policy = policy
        self.quantum = quantum
        phase_ois = {
            index % config.num_cores: list(job.program.meta.get("phase_ois", []))
            for index, job in enumerate(jobs)
        }
        self.lane_manager = policy.build_lane_manager(config, phase_ois)
        self.metrics = Metrics(
            num_cores=config.num_cores,
            total_lanes=config.vector.total_lanes,
            pipes_per_lane=config.vector.compute_issue_width,
        )
        self.coproc = CoProcessor(config, policy.mode, self.metrics, self.lane_manager)
        self.tasks = [
            _Task(job=job, core_id=index % config.num_cores)
            for index, job in enumerate(jobs)
        ]
        self._run_queues: List[List[int]] = [[] for _ in range(config.num_cores)]
        for index in range(len(self.tasks)):
            self._run_queues[index % config.num_cores].append(index)
        #: Per core: the running task index, or None while switching/idle.
        self._running: List[Optional[int]] = [None] * config.num_cores
        #: Per core: task waiting for drain ("out") or lane restore ("in").
        self._switching_out: List[Optional[int]] = [None] * config.num_cores
        self._switching_in: List[Optional[int]] = [None] * config.num_cores
        self._slice_end = [0] * config.num_cores
        self.context_switches = 0

    # -- protocol steps -----------------------------------------------------

    def _scalar_for(self, task: _Task) -> ScalarCore:
        if task.scalar is None:
            task.scalar = ScalarCore(
                core_id=task.core_id,
                program=task.job.program,
                image=task.job.image,
                coproc=self.coproc,
                metrics=self.metrics,
                config=self.config.core,
            )
        return task.scalar

    def _begin_switch_out(self, core: int, cycle: int) -> None:
        task_index = self._running[core]
        if task_index is None:
            return
        self._running[core] = None
        self._switching_out[core] = task_index

    def _try_complete_switch_out(self, core: int, cycle: int) -> None:
        task_index = self._switching_out[core]
        if task_index is None or not self.coproc.drained(core):
            return  # pipelines not drained yet; keep waiting
        task = self.tasks[task_index]
        table = self.coproc.resource_table
        # Save the dedicated registers, then release the core's resources.
        task.saved_oi = table.oi(core)
        task.saved_vl = table.vl(core)
        if table.vl(core):
            table.apply_vl(core, 0)
            self.coproc.lane_table.reconfigure(core, 0)
            self.metrics.on_lane_change(core, 0, cycle)
        table.set_oi(core, OIValue.ZERO)
        for decided, lanes in self.lane_manager.on_phase_change(table, cycle).items():
            table.set_decision(decided, lanes)
        task.switches += 1
        self.context_switches += 1
        self._switching_out[core] = None
        if not task.finished:
            self._run_queues[core].append(task_index)
        self._schedule_next(core, cycle)

    def _schedule_next(self, core: int, cycle: int) -> None:
        if self._run_queues[core]:
            self._switching_in[core] = self._run_queues[core].pop(0)
            self._try_complete_switch_in(core, cycle)

    def _try_complete_switch_in(self, core: int, cycle: int) -> None:
        task_index = self._switching_in[core]
        if task_index is None:
            return
        task = self.tasks[task_index]
        table = self.coproc.resource_table
        if not task.saved_oi.is_phase_end:
            # Restoring <OI> re-triggers lane partitioning (paper §5).
            table.set_oi(core, task.saved_oi)
            decisions = self.lane_manager.on_phase_change(table, cycle)
            for decided, lanes in decisions.items():
                table.set_decision(decided, lanes)
        if task.saved_vl:
            if not table.apply_vl(core, task.saved_vl):
                return  # lanes busy: retry next cycle
            self.coproc.lane_table.reconfigure(core, task.saved_vl)
            self.metrics.on_lane_change(core, task.saved_vl, cycle)
        self._switching_in[core] = None
        self._running[core] = task_index
        self._slice_end[core] = cycle + self.quantum
        self.coproc.set_core_active(core, True)

    # -- the run loop ---------------------------------------------------------

    def run(self, max_cycles: int = 6_000_000) -> ScheduleResult:
        """Run until every workload halts and drains."""
        cycle = 0
        for core in range(self.config.num_cores):
            self._schedule_next(core, 0)
        while not all(task.finished for task in self.tasks):
            if cycle >= max_cycles:
                raise SimulationError(f"scheduled run exceeded {max_cycles} cycles")
            for core in range(self.config.num_cores):
                self._try_complete_switch_out(core, cycle)
                self._try_complete_switch_in(core, cycle)
                task_index = self._running[core]
                if task_index is None:
                    continue
                task = self.tasks[task_index]
                scalar = self._scalar_for(task)
                if not scalar.halted:
                    scalar.step(cycle)
                    task.scheduled_cycles += 1
                if scalar.halted and self.coproc.drained(core):
                    task.finished = True
                    task.finish_cycle = cycle
                    self._running[core] = None
                    self._begin_cleanup(core, cycle)
                    self._schedule_next(core, cycle)
                elif cycle >= self._slice_end[core] and self._run_queues[core]:
                    self._begin_switch_out(core, cycle)
            self.coproc.step(cycle)
            cycle += 1
        self.metrics.close(cycle)
        return ScheduleResult(
            total_cycles=cycle,
            metrics=self.metrics,
            finish_cycles=[task.finish_cycle for task in self.tasks],
            scheduled_cycles=[task.scheduled_cycles for task in self.tasks],
            context_switches=self.context_switches,
        )

    def _begin_cleanup(self, core: int, cycle: int) -> None:
        """Release a finished task's resources (its epilogue already set
        ``<VL> = 0``; this is belt-and-braces for aborted programs)."""
        table = self.coproc.resource_table
        if table.vl(core):
            table.apply_vl(core, 0)
            self.coproc.lane_table.reconfigure(core, 0)
            self.metrics.on_lane_change(core, 0, cycle)
