"""Lane managers — the hardware ``LaneMgr`` of §5 plus policy stand-ins.

A lane manager is invoked by the co-processor whenever an ``MSR <OI>``
executes (a phase-changing point) and returns the new ``<decision>`` values
for every core:

* :class:`ElasticLaneManager` — the Occamy LaneMgr: roofline-guided greedy
  re-partitioning over the currently running phases;
* :class:`StaticLaneManager` — a constant plan (the Private baseline and
  the VLS static spatial-sharing policy);
* :class:`TemporalLaneManager` — every core is offered the full lane pool
  (the FTS temporal-sharing policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.coproc.resource_table import ResourceTable
from repro.core.partition import default_lane_shards, greedy_partition
from repro.core.roofline import RooflineModel


class ElasticLaneManager:
    """The Occamy hardware lane manager (monitor + roofline + greedy)."""

    def __init__(
        self,
        roofline: RooflineModel,
        total_lanes: int,
        sharded: Optional[bool] = None,
    ) -> None:
        self.roofline = roofline
        self.total_lanes = total_lanes
        #: Bulk-round partition switch (``REPRO_NO_LANE_SHARDS``), latched
        #: at construction like every engine axis — repartitions happen at
        #: runtime, when the kill-switch environment is no longer in scope.
        self.sharded = default_lane_shards() if sharded is None else sharded
        self.plans_generated = 0
        self.plan_history: List[Tuple[int, Dict[int, int]]] = []

    def on_phase_change(self, table: ResourceTable, cycle: int) -> Dict[int, int]:
        """Re-plan on a phase entry/exit; cores with no phase decide to 0."""
        running = table.running_phases()
        plan = greedy_partition(
            running, self.total_lanes, self.roofline, sharded=self.sharded
        )
        decisions = {core: plan.get(core, 0) for core in range(table.num_cores)}
        self.plans_generated += 1
        self.plan_history.append((cycle, dict(decisions)))
        return decisions


class StaticLaneManager:
    """A fixed partition: decisions never change (Private / VLS)."""

    def __init__(self, plan: Mapping[int, int]) -> None:
        self.plan = dict(plan)
        self.plans_generated = 0

    def on_phase_change(self, table: ResourceTable, cycle: int) -> Dict[int, int]:
        self.plans_generated += 1
        return {
            core: self.plan.get(core, 0) for core in range(table.num_cores)
        }


class TemporalLaneManager:
    """FTS: every core runs full-width; lanes are shared in time."""

    def __init__(self, total_lanes: int) -> None:
        self.total_lanes = total_lanes
        self.plans_generated = 0

    def on_phase_change(self, table: ResourceTable, cycle: int) -> Dict[int, int]:
        self.plans_generated += 1
        return {core: self.total_lanes for core in range(table.num_cores)}
