"""Ablation variants of Occamy's design choices.

Each variant disables one ingredient of the full design so the benchmark
suite can show what that ingredient buys:

* ``equal-split`` — replace the roofline-guided greedy partitioner with an
  equal division among running phases (no phase-behaviour awareness);
* ``flat-memory`` — disable the *hierarchical* roofline: every phase is
  bounded by DRAM bandwidth regardless of cache residency, so
  compute-intensive resident phases are under-allocated;
* ``no-issue-ceiling`` — drop the SIMD-issue-bandwidth ceiling (Eq. 2),
  reverting to a classic compute/memory roofline (the paper's Case 4
  shows what this costs);
* ``eager-only`` — compiled without the lazy partition monitor: a phase
  keeps its prologue vector length until it ends, so lanes freed by a
  co-runner mid-phase are never picked up (the eager-lazy ablation; this
  one is a *compiler* knob: ``CompileOptions(elastic=False)``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.common.config import MachineConfig
from repro.common.errors import ConfigurationError
from repro.coproc.coprocessor import SharingMode
from repro.coproc.resource_table import ResourceTable
from repro.core.lane_manager import ElasticLaneManager
from repro.core.policies import Policy
from repro.core.roofline import RooflineModel


class EqualSplitLaneManager:
    """Divide the lanes equally among the currently running phases."""

    def __init__(self, total_lanes: int) -> None:
        self.total_lanes = total_lanes
        self.plans_generated = 0
        self.plan_history: list = []

    def on_phase_change(self, table: ResourceTable, cycle: int) -> Dict[int, int]:
        running = sorted(table.running_phases())
        decisions = {core: 0 for core in range(table.num_cores)}
        if running:
            share = self.total_lanes // len(running)
            remainder = self.total_lanes - share * len(running)
            for index, core in enumerate(running):
                decisions[core] = share + (1 if index < remainder else 0)
        self.plans_generated += 1
        self.plan_history.append((cycle, dict(decisions)))
        return decisions


def _flat_memory_roofline(config: MachineConfig) -> RooflineModel:
    """All memory levels collapsed to the DRAM ceiling."""
    dram = float(config.memory.dram_bytes_per_cycle)
    return replace(
        RooflineModel.from_config(config),
        mem_bandwidths=tuple(
            sorted({"vec_cache": dram, "l2": dram, "dram": dram}.items())
        ),
    )


def _no_issue_roofline(config: MachineConfig) -> RooflineModel:
    """The SIMD-issue ceiling pushed beyond every other bound."""
    return replace(
        RooflineModel.from_config(config), issue_bytes_per_lane=1e9
    )


def _variant_policy(key: str, label: str, factory) -> Policy:
    return Policy(key=key, label=label, mode=SharingMode.SPATIAL, _factory=factory)


EQUAL_SPLIT = _variant_policy(
    "equal-split",
    "Elastic (equal split)",
    lambda config, ois: EqualSplitLaneManager(config.vector.total_lanes),
)

FLAT_MEMORY = _variant_policy(
    "flat-memory",
    "Elastic (flat-memory roofline)",
    lambda config, ois: ElasticLaneManager(
        _flat_memory_roofline(config), config.vector.total_lanes
    ),
)

NO_ISSUE_CEILING = _variant_policy(
    "no-issue-ceiling",
    "Elastic (no issue ceiling)",
    lambda config, ois: ElasticLaneManager(
        _no_issue_roofline(config), config.vector.total_lanes
    ),
)

ABLATION_POLICIES = (EQUAL_SPLIT, FLAT_MEMORY, NO_ISSUE_CEILING)


def ablation_policy(key: str) -> Policy:
    """Look up an ablation policy by key."""
    for policy in ABLATION_POLICIES:
        if policy.key == key:
            return policy
    raise ConfigurationError(f"unknown ablation {key!r}")
