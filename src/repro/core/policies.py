"""The four evaluated SIMD sharing architectures (paper Fig. 1).

==========  ======================  ============================  =========
Policy      Lane pool               Lane manager                  Fig. 1
==========  ======================  ============================  =========
`PRIVATE`   spatial, fixed N/C      constant N/C per core         (a)
`FTS`       temporal, full width    constant N for every core     (b)
`VLS`       spatial, fixed plan     greedy plan from peak phases  (c)
`OCCAMY`    spatial, elastic        roofline greedy, re-planned   (d)
==========  ======================  ============================  =========

All four run the *same* compiled elastic programs; the differences live
entirely in the sharing mode and the decisions the lane manager hands back,
mirroring the paper's "same amount of SIMD resources for fair comparison".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from repro.common.config import MachineConfig
from repro.coproc.coprocessor import SharingMode
from repro.core.lane_manager import (
    ElasticLaneManager,
    StaticLaneManager,
    TemporalLaneManager,
)
from repro.core.partition import static_partition
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue

#: Maps core id -> the OIs of the phases its workload will execute
#: (available statically from compilation; used by VLS to pick its plan).
PhaseOIs = Mapping[int, List[OIValue]]

ManagerFactory = Callable[[MachineConfig, PhaseOIs], object]


@dataclass(frozen=True)
class Policy:
    """One SIMD sharing architecture."""

    key: str
    label: str
    mode: SharingMode
    _factory: ManagerFactory

    def build_lane_manager(self, config: MachineConfig, phase_ois: PhaseOIs) -> object:
        """Construct this policy's lane manager for ``config``."""
        return self._factory(config, phase_ois)


def _private_manager(config: MachineConfig, phase_ois: PhaseOIs) -> StaticLaneManager:
    lanes = config.lanes_per_core_private
    return StaticLaneManager({core: lanes for core in range(config.num_cores)})


def _fts_manager(config: MachineConfig, phase_ois: PhaseOIs) -> TemporalLaneManager:
    return TemporalLaneManager(config.vector.total_lanes)


def _vls_manager(config: MachineConfig, phase_ois: PhaseOIs) -> StaticLaneManager:
    roofline = RooflineModel.from_config(config)
    plan = static_partition(phase_ois, config.vector.total_lanes, roofline)
    # Cores with no vector phases keep the even split as a safe default.
    fallback = config.lanes_per_core_private
    full = {core: plan.get(core, fallback) for core in range(config.num_cores)}
    return StaticLaneManager(full)


def _occamy_manager(config: MachineConfig, phase_ois: PhaseOIs) -> ElasticLaneManager:
    roofline = RooflineModel.from_config(config)
    return ElasticLaneManager(roofline, config.vector.total_lanes)


PRIVATE = Policy("private", "Private", SharingMode.SPATIAL, _private_manager)
FTS = Policy("fts", "FTS", SharingMode.TEMPORAL, _fts_manager)
VLS = Policy("vls", "VLS", SharingMode.SPATIAL, _vls_manager)
OCCAMY = Policy("occamy", "Occamy", SharingMode.SPATIAL, _occamy_manager)

#: CTS — the *coarse-grained* temporal-sharing baseline of Beldianu &
#: Ziavras (paper §8/[3,4]): one core owns the whole co-processor per
#: quantum.  Not part of the paper's headline four, but the comparison the
#: related work is built on (they found fine-grained FTS superior).
CTS = Policy("cts", "CTS", SharingMode.COARSE_TEMPORAL, _fts_manager)

#: Evaluation order used throughout the paper's figures.
ALL_POLICIES: Tuple[Policy, ...] = (PRIVATE, FTS, VLS, OCCAMY)

#: The headline four plus the related-work CTS baseline.
EXTENDED_POLICIES: Tuple[Policy, ...] = ALL_POLICIES + (CTS,)

POLICIES_BY_KEY: Dict[str, Policy] = {p.key: p for p in EXTENDED_POLICIES}


def policy(key: str) -> Policy:
    """Look up a policy by key (``private``/``fts``/``vls``/``occamy``)."""
    try:
        return POLICIES_BY_KEY[key]
    except KeyError as exc:
        raise KeyError(
            f"unknown policy {key!r}; choose from {sorted(POLICIES_BY_KEY)}"
        ) from exc
