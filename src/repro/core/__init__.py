"""The paper's primary contribution: elastic spatial sharing.

This package holds the vector-length-aware roofline model (§5.1), the
greedy lane-partition algorithm (§5.2), the lane managers, the four sharing
policies of Fig. 1 and the multi-core machine that ties scalar cores to the
shared co-processor.
"""

from repro.coproc.metrics import Metrics, PhaseRecord, StallReason
from repro.core.lane_manager import (
    ElasticLaneManager,
    StaticLaneManager,
    TemporalLaneManager,
)
from repro.core.machine import Job, Machine, RunResult, run_policy
from repro.core.partition import greedy_partition, static_partition
from repro.core.policies import (
    ALL_POLICIES,
    CTS,
    EXTENDED_POLICIES,
    FTS,
    OCCAMY,
    PRIVATE,
    VLS,
    Policy,
    policy,
)
from repro.core.roofline import RooflineModel
from repro.core.scalar_core import ScalarCore

__all__ = [
    "ALL_POLICIES",
    "CTS",
    "EXTENDED_POLICIES",
    "ElasticLaneManager",
    "FTS",
    "Job",
    "Machine",
    "Metrics",
    "OCCAMY",
    "PRIVATE",
    "PhaseRecord",
    "Policy",
    "RooflineModel",
    "RunResult",
    "ScalarCore",
    "StallReason",
    "StaticLaneManager",
    "TemporalLaneManager",
    "VLS",
    "greedy_partition",
    "policy",
    "run_policy",
    "static_partition",
]
