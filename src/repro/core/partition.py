"""The greedy lane-partition algorithm (paper §5.2).

Given the operational intensities of the currently running phases, the
algorithm:

1. gives one ExeBU to every workload currently executing a phase
   (``<OI> != 0``) so nobody starves;
2. iteratively sorts the workloads by the *net performance gain* (Eq. 3) of
   one extra ExeBU and gives one ExeBU to each workload with a positive
   gain, in that order, while lanes remain;
3. stops when all ExeBUs are allocated or no workload would gain.

Fairness properties proved by the paper and asserted by our property tests:
co-running compute-intensive workloads split the lanes equally, and every
running workload receives at least one lane.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue

#: Gains below this threshold count as "no further performance gain".
GAIN_EPSILON = 1e-9


def default_lane_shards() -> bool:
    """Whether the sharded lane-bookkeeping fast paths are on by default.

    On unless ``REPRO_NO_LANE_SHARDS`` is set (to any non-empty value).
    Covers the bulk-round greedy partition below, the co-processor's
    busy-pool set for CTS arbitration and the lane table's per-owner
    counters — all bit-identical to the scanning reference paths; the kill
    switch exists for the differential-fuzz engine matrix.
    """
    return not os.environ.get("REPRO_NO_LANE_SHARDS")


@lru_cache(maxsize=4096)
def _gain_profile(
    roofline: RooflineModel, oi: OIValue
) -> Tuple[Tuple[float, ...], int]:
    """Marginal-gain profile of one phase: ``(gains, cap)``.

    ``gains[l]`` is Eq. 3's net gain of growing from ``l`` to ``l+1`` lanes
    — the exact floats the reference rounds recompute every repartition.
    ``attainable`` is the minimum of two linear-through-origin ceilings and
    a constant, hence concave in the lane count, so the gains are
    non-increasing and the profitable lane counts form a prefix: ``cap`` is
    the smallest count at which another lane stops paying (bounded by
    ``max_lanes``), and a core is grant-eligible iff ``plan < cap``.
    Both key types are frozen dataclasses, so profiles memoise across every
    repartition of a run *and* across co-runs sharing a roofline.
    """
    gains = tuple(
        roofline.net_gain(lanes, oi) for lanes in range(roofline.max_lanes)
    )
    cap = roofline.max_lanes
    for lanes in range(1, roofline.max_lanes):
        if gains[lanes] <= GAIN_EPSILON:
            cap = lanes
            break
    return gains, cap


def _greedy_bulk(
    active: Dict[int, OIValue],
    plan: Dict[int, int],
    remaining: int,
    roofline: RooflineModel,
) -> Dict[int, int]:
    """Bulk-round equivalent of the reference round loop.

    The reference grants one lane per round to every positive-gain core in
    ``(-gain, core)`` order.  Because each core's gains are non-increasing
    (see :func:`_gain_profile`) the eligible set only shrinks, so ``r``
    consecutive full rounds — while every eligible core keeps headroom and
    lanes remain for everyone — hand exactly ``r`` lanes to each eligible
    core regardless of order, collapsible into one bulk grant.  Only the
    final partial round (fewer lanes left than eligible cores) depends on
    the sort order, and it is replayed literally with the memoised gains.
    """
    profiles = {core: _gain_profile(roofline, active[core]) for core in active}
    while remaining > 0:
        eligible = [core for core in active if plan[core] < profiles[core][1]]
        if not eligible:
            break
        count = len(eligible)
        if remaining < count:
            order = sorted(
                (-profiles[core][0][plan[core]], core) for core in eligible
            )
            for _key, core in order[:remaining]:
                plan[core] += 1
            break
        step = remaining // count
        for core in eligible:
            headroom = profiles[core][1] - plan[core]
            if headroom < step:
                step = headroom
        for core in eligible:
            plan[core] += step
        remaining -= step * count
    return plan


def greedy_partition(
    demands: Mapping[int, OIValue],
    total_lanes: int,
    roofline: RooflineModel,
    sharded: Optional[bool] = None,
) -> Dict[int, int]:
    """Partition ``total_lanes`` ExeBUs across the running phases.

    ``demands`` maps core id -> the OI of the phase it is executing; cores
    without a running phase must not appear.  Returns core id -> lane count.
    Raises when more phases run than lanes exist (cannot satisfy the
    one-lane-minimum constraint of Eq. 1).  ``sharded`` selects the
    bulk-round fast path (default :func:`default_lane_shards`), bit-identical
    to the lane-by-lane reference rounds below.
    """
    active = {core: oi for core, oi in demands.items() if not oi.is_phase_end}
    if not active:
        return {}
    if len(active) > total_lanes:
        raise ConfigurationError(
            f"{len(active)} running phases exceed {total_lanes} lanes"
        )

    # Step 1: one ExeBU per running workload.
    plan: Dict[int, int] = {core: 1 for core in active}
    remaining = total_lanes - len(active)

    if default_lane_shards() if sharded is None else sharded:
        return _greedy_bulk(active, plan, remaining, roofline)

    # Step 2: rounds of marginal-gain allocation.
    while remaining > 0:
        gains = [
            (roofline.net_gain(plan[core], active[core]), core)
            for core in active
            if plan[core] < roofline.max_lanes
        ]
        positive = sorted(
            ((gain, core) for gain, core in gains if gain > GAIN_EPSILON),
            key=lambda pair: (-pair[0], pair[1]),
        )
        if not positive:
            break  # Step 3: nobody benefits from more lanes.
        progressed = False
        for _gain, core in positive:
            if remaining <= 0:
                break
            # Recheck at grant time: the sorted gains were computed before
            # the round started, and a grant earlier in the round may have
            # moved this core past its saturation point (its marginal gain
            # dropping below GAIN_EPSILON, e.g. at the memory ceiling).
            # Granting on the stale gain would park a lane where it earns
            # nothing while a later round could still hand it to a core
            # with real headroom.
            if roofline.net_gain(plan[core], active[core]) <= GAIN_EPSILON:
                continue
            plan[core] += 1
            remaining -= 1
            progressed = True
        if not progressed:  # pragma: no cover - defensive
            break
    return plan


def static_partition(
    phase_ois: Mapping[int, "list[OIValue]"],
    total_lanes: int,
    roofline: RooflineModel,
) -> Dict[int, int]:
    """The VLS (static spatial sharing) partition.

    Each workload's demand is its *most demanding* phase (largest saturation
    lane count); the greedy algorithm then splits the lanes once, and the
    result never changes at runtime (Fig. 1(c)).
    """
    peak_demand: Dict[int, OIValue] = {}
    for core, ois in phase_ois.items():
        running = [oi for oi in ois if not oi.is_phase_end]
        if not running:
            continue
        peak_demand[core] = max(
            running, key=lambda oi: roofline.saturation_lanes(oi)
        )
    return greedy_partition(peak_demand, total_lanes, roofline)
