"""The greedy lane-partition algorithm (paper §5.2).

Given the operational intensities of the currently running phases, the
algorithm:

1. gives one ExeBU to every workload currently executing a phase
   (``<OI> != 0``) so nobody starves;
2. iteratively sorts the workloads by the *net performance gain* (Eq. 3) of
   one extra ExeBU and gives one ExeBU to each workload with a positive
   gain, in that order, while lanes remain;
3. stops when all ExeBUs are allocated or no workload would gain.

Fairness properties proved by the paper and asserted by our property tests:
co-running compute-intensive workloads split the lanes equally, and every
running workload receives at least one lane.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.common.errors import ConfigurationError
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue

#: Gains below this threshold count as "no further performance gain".
GAIN_EPSILON = 1e-9


def greedy_partition(
    demands: Mapping[int, OIValue],
    total_lanes: int,
    roofline: RooflineModel,
) -> Dict[int, int]:
    """Partition ``total_lanes`` ExeBUs across the running phases.

    ``demands`` maps core id -> the OI of the phase it is executing; cores
    without a running phase must not appear.  Returns core id -> lane count.
    Raises when more phases run than lanes exist (cannot satisfy the
    one-lane-minimum constraint of Eq. 1).
    """
    active = {core: oi for core, oi in demands.items() if not oi.is_phase_end}
    if not active:
        return {}
    if len(active) > total_lanes:
        raise ConfigurationError(
            f"{len(active)} running phases exceed {total_lanes} lanes"
        )

    # Step 1: one ExeBU per running workload.
    plan: Dict[int, int] = {core: 1 for core in active}
    remaining = total_lanes - len(active)

    # Step 2: rounds of marginal-gain allocation.
    while remaining > 0:
        gains = [
            (roofline.net_gain(plan[core], active[core]), core)
            for core in active
            if plan[core] < roofline.max_lanes
        ]
        positive = sorted(
            ((gain, core) for gain, core in gains if gain > GAIN_EPSILON),
            key=lambda pair: (-pair[0], pair[1]),
        )
        if not positive:
            break  # Step 3: nobody benefits from more lanes.
        progressed = False
        for _gain, core in positive:
            if remaining <= 0:
                break
            # Recheck at grant time: the sorted gains were computed before
            # the round started, and a grant earlier in the round may have
            # moved this core past its saturation point (its marginal gain
            # dropping below GAIN_EPSILON, e.g. at the memory ceiling).
            # Granting on the stale gain would park a lane where it earns
            # nothing while a later round could still hand it to a core
            # with real headroom.
            if roofline.net_gain(plan[core], active[core]) <= GAIN_EPSILON:
                continue
            plan[core] += 1
            remaining -= 1
            progressed = True
        if not progressed:  # pragma: no cover - defensive
            break
    return plan


def static_partition(
    phase_ois: Mapping[int, "list[OIValue]"],
    total_lanes: int,
    roofline: RooflineModel,
) -> Dict[int, int]:
    """The VLS (static spatial sharing) partition.

    Each workload's demand is its *most demanding* phase (largest saturation
    lane count); the greedy algorithm then splits the lanes once, and the
    result never changes at runtime (Fig. 1(c)).
    """
    peak_demand: Dict[int, OIValue] = {}
    for core, ois in phase_ois.items():
        running = [oi for oi in ois if not oi.is_phase_end]
        if not running:
            continue
        peak_demand[core] = max(
            running, key=lambda oi: roofline.saturation_lanes(oi)
        )
    return greedy_partition(peak_demand, total_lanes, roofline)
