"""Machine configuration (the paper's Table 4).

The defaults model the evaluated two-core TaiShan-style system:

* 2 scalar cores, 8-issue out-of-order, 2 GHz (we model the scalar side as
  an in-order-retire interpreter with a parametric IPC — see DESIGN.md);
* a shared SIMD co-processor with 32 homogeneous 128-bit lanes (ExeBUs),
  vector issue width 4 per core (2 compute + 2 ld/st);
* a 128 KB 8-way Vec Cache (5 cycles), an 8 MB shared L2 (18 cycles) and
  64 GB/s DRAM (32 B/cycle at 2 GHz).

Two knobs are calibration points rather than literal paper values and are
flagged in DESIGN.md §6: ``vregs_per_block`` (the paper's text and its VRF
byte budget disagree) and ``dram_latency``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Tuple

from repro.common.errors import ConfigurationError

#: Width of one SIMD lane (one ExeBU) in bits — the ARM SVE granule.
LANE_BITS = 128

#: Width of one SIMD lane in bytes.
LANE_BYTES = LANE_BITS // 8


def default_batch_exec() -> bool:
    """Whether the co-processor uses the batch-execute dispatch backend.

    On unless ``REPRO_NO_BATCH_EXEC`` is set (to any non-empty value).  The
    batch backend groups each cycle's ready lane-operations by opcode class
    and executes each group as one bulk operation instead of per-uop Python
    dispatch; it is bit-identical to the per-entry reference engine (the
    differential-fuzz matrix diffs every combination), and the kill switch
    exists for that matrix, the result-cache key and debugging.
    """
    return not os.environ.get("REPRO_NO_BATCH_EXEC")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64
    latency: int = 4
    bytes_per_cycle: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache dimensions must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigurationError(
                "cache size must be a multiple of ways * line size "
                f"(got {self.size_bytes}B / {self.ways}w / {self.line_bytes}B)"
            )
        if self.latency < 1 or self.bytes_per_cycle < 1:
            raise ConfigurationError("cache timing must be positive")

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class MemoryConfig:
    """The vector-side memory hierarchy: Vec Cache -> L2 -> DRAM."""

    #: The Vec Cache is ported per RegBlk (Fig. 5 feeds all lanes each
    #: cycle), so its bandwidth scales with the data-path width and is not
    #: the shared bottleneck — L2 and DRAM are.  We model that with a large
    #: per-cycle byte budget.
    vec_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=128 * 1024, ways=8, line_bytes=64, latency=5, bytes_per_cycle=1024
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=8 * 1024 * 1024, ways=16, line_bytes=64, latency=18, bytes_per_cycle=64
        )
    )
    dram_latency: int = 120
    dram_bytes_per_cycle: int = 32  # 64 GB/s at 2 GHz

    def __post_init__(self) -> None:
        if self.dram_latency < 1 or self.dram_bytes_per_cycle < 1:
            raise ConfigurationError("DRAM timing must be positive")
        if self.vec_cache.line_bytes != self.l2.line_bytes:
            raise ConfigurationError("Vec Cache and L2 must share one line size")

    @property
    def line_bytes(self) -> int:
        """Cache-line size shared by every level."""
        return self.vec_cache.line_bytes


@dataclass(frozen=True)
class VectorConfig:
    """The SIMD co-processor resources shared by all cores."""

    total_lanes: int = 32
    compute_issue_width: int = 2  # SIMD compute uops / core / cycle
    ldst_issue_width: int = 2  # SIMD ld/st uops / core / cycle
    compute_latency: int = 4  # pipelined FP latency of one ExeBU
    #: Physical 128-bit vector registers per RegBlk.  Calibrated so spatial
    #: sharing never renaming-stalls (freelist >= the per-core in-flight
    #: window) while temporal sharing — which keeps every core's context in
    #: every block — contends visibly (Fig. 13).  See DESIGN.md §6 on the
    #: paper's own inconsistent VRF sizing.
    vregs_per_block: int = 128
    pregs_per_block: int = 64  # physical 16-bit predicate registers per RegBlk
    arch_vregs: int = 32  # architectural z0..z31
    arch_pregs: int = 16  # architectural p0..p15
    flops_per_lane_per_cycle: float = 4.0  # FP32 elements per 128-bit lane
    #: Coarse-grained temporal sharing (the CTS baseline of Beldianu &
    #: Ziavras): ownership quantum and context-switch drain penalty.
    cts_quantum: int = 256
    cts_switch_penalty: int = 40

    def __post_init__(self) -> None:
        if self.total_lanes < 1:
            raise ConfigurationError("need at least one SIMD lane")
        if self.vregs_per_block <= self.arch_vregs:
            raise ConfigurationError(
                "vregs_per_block must exceed the architectural register count"
            )
        if self.compute_issue_width < 1 or self.ldst_issue_width < 1:
            raise ConfigurationError("issue widths must be positive")

    @property
    def issue_width(self) -> int:
        """Total vector issue width per core (paper: 4 = 2 + 2)."""
        return self.compute_issue_width + self.ldst_issue_width

    def fp_peak(self, vl: int) -> float:
        """Peak FP32 FLOPs/cycle attainable at vector length ``vl`` lanes.

        This is the paper's "FP peak (vl)" horizontal roofline ceiling: each
        128-bit ExeBU retires ``flops_per_lane_per_cycle`` single-precision
        FLOPs per cycle, multiplied by the compute issue width.
        """
        return self.flops_per_lane_per_cycle * vl * self.compute_issue_width

    def simd_issue_bandwidth(self, vl: int) -> float:
        """SIMD issue bandwidth in bytes/cycle at ``vl`` lanes (Eq. 2)."""
        return self.ldst_issue_width * vl * LANE_BYTES


@dataclass(frozen=True)
class CoreConfig:
    """One scalar core and its co-processor-facing queues."""

    scalar_ipc: int = 8  # mini-ISA instructions retired per cycle (8-issue)
    #: Per-core in-flight vector window.  Sized so a streaming loop at a
    #: small vector length stays DRAM-*bandwidth*-bound rather than
    #: latency-bound (window bytes >= dram_latency * dram_bytes_per_cycle),
    #: which is the premise behind the paper's "memory-intensive phases
    #: don't benefit from more lanes" observation.
    instruction_pool_entries: int = 96
    transmit_width: int = 4  # vector instrs transmitted to Occamy per cycle
    store_queue_entries: int = 48  # STQ entries per core

    def __post_init__(self) -> None:
        if self.scalar_ipc < 1 or self.instruction_pool_entries < 1:
            raise ConfigurationError("core parameters must be positive")


@dataclass(frozen=True)
class MachineConfig:
    """A full multi-core machine sharing one SIMD co-processor."""

    num_cores: int = 2
    vector: VectorConfig = field(default_factory=VectorConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    frequency_ghz: float = 2.0

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("need at least one core")
        if self.vector.total_lanes % self.num_cores != 0:
            raise ConfigurationError(
                "total lanes must divide evenly across cores so the Private "
                "baseline is well-defined "
                f"({self.vector.total_lanes} lanes / {self.num_cores} cores)"
            )

    @property
    def lanes_per_core_private(self) -> int:
        """Per-core lane count of the core-private baseline (Fig. 1a)."""
        return self.vector.total_lanes // self.num_cores

    def replace(self, **changes: object) -> "MachineConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    def scaled_to_cores(self, num_cores: int) -> "MachineConfig":
        """Return a config scaled to ``num_cores`` keeping lanes-per-core.

        Matches §4.2.1: scaling Occamy up enlarges the tables and pipelines
        while the per-core lane budget stays constant (16 lanes/core).
        Raises :class:`ConfigurationError` when the current lane pool does
        not divide evenly across the current cores — silently truncating
        the per-core budget would hand the scaled machine fewer lanes per
        core than the source configuration promises.
        """
        if self.vector.total_lanes % self.num_cores != 0:
            raise ConfigurationError(
                f"cannot scale: {self.vector.total_lanes} total lanes do not "
                f"divide evenly across {self.num_cores} cores"
            )
        lanes_per_core = self.vector.total_lanes // self.num_cores
        vector = dataclasses.replace(self.vector, total_lanes=lanes_per_core * num_cores)
        return dataclasses.replace(self, num_cores=num_cores, vector=vector)


def validate_core_count(value: object, source: str = "--cores") -> int:
    """One validated core count from CLI-ish input.

    Accepts ints or strings of ints; rejects non-integers (including
    floats and bools), zero and negatives with a
    :class:`ConfigurationError` naming the offending value and flag, so
    bad CLI input exits 2 cleanly instead of surfacing a deep stack
    trace from ``scaled_to_cores``.
    """
    if isinstance(value, bool):
        raise ConfigurationError(f"{source}: {value!r} is not an integer core count")
    if isinstance(value, str):
        try:
            value = int(value, 10)
        except ValueError:
            raise ConfigurationError(
                f"{source}: {value!r} is not an integer core count"
            ) from None
    if isinstance(value, float):
        if not value.is_integer():
            raise ConfigurationError(
                f"{source}: {value!r} is not an integer core count"
            )
        value = int(value)
    if not isinstance(value, int):
        raise ConfigurationError(f"{source}: {value!r} is not an integer core count")
    if value < 1:
        raise ConfigurationError(f"{source}: core count must be positive, got {value}")
    return value


def validate_core_counts(values, source: str = "--cores") -> Tuple[int, ...]:
    """Validate a CLI core-count list: integers, positive, no duplicates."""
    counts = []
    for value in values:
        count = validate_core_count(value, source)
        if count in counts:
            raise ConfigurationError(f"{source}: duplicate core count {count}")
        counts.append(count)
    if not counts:
        raise ConfigurationError(f"{source}: needs at least one core count")
    return tuple(counts)


def table4_config(num_cores: int = 2) -> MachineConfig:
    """The evaluated configuration of the paper's Table 4."""
    return MachineConfig().scaled_to_cores(num_cores)


def experiment_config(num_cores: int = 2) -> MachineConfig:
    """Table 4 with proportionally scaled-down caches.

    The paper simulates SPEC REF inputs whose working sets dwarf an 8 MB
    L2; our workloads are scaled so Python-speed simulations finish in
    seconds, and the caches scale with them to preserve the residency
    classes (compute-intensive => Vec-Cache resident, memory-intensive =>
    DRAM streaming).  All latencies, bandwidths and issue widths keep the
    Table 4 values.
    """
    memory = MemoryConfig(
        vec_cache=CacheConfig(
            size_bytes=32 * 1024, ways=8, line_bytes=64, latency=5, bytes_per_cycle=1024
        ),
        l2=CacheConfig(
            size_bytes=128 * 1024, ways=16, line_bytes=64, latency=18, bytes_per_cycle=64
        ),
        dram_latency=120,
        dram_bytes_per_cycle=32,
    )
    return MachineConfig(memory=memory).scaled_to_cores(num_cores)


def canonical_config_dict(config: MachineConfig) -> Dict[str, object]:
    """A plain nested dict of every configuration field.

    Every leaf is an int/float/str, so the dict JSON-serialises losslessly —
    the basis of :func:`config_fingerprint`.
    """
    return dataclasses.asdict(config)


@lru_cache(maxsize=None)
def config_fingerprint(config: MachineConfig) -> str:
    """A stable content hash of a :class:`MachineConfig`.

    Two configs hash equal iff every field (including nested cache/vector/
    core geometry and timing) is equal — unlike ``id()``- or
    ``num_cores``-based keys, any knob change invalidates derived caches.
    Used to key both the in-memory sweep memo and the persistent on-disk
    result cache.
    """
    payload = json.dumps(canonical_config_dict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def describe(config: MachineConfig) -> Dict[str, Tuple[object, ...]]:
    """Summarise a configuration as printable rows (used by reporting)."""
    return {
        "cores": (config.num_cores, "scalar cores"),
        "lanes": (config.vector.total_lanes, "128-bit ExeBUs"),
        "issue": (config.vector.issue_width, "vector uops/core/cycle"),
        "vec_cache": (config.memory.vec_cache.size_bytes // 1024, "KB"),
        "l2": (config.memory.l2.size_bytes // 1024 // 1024, "MB"),
        "dram_bw": (config.memory.dram_bytes_per_cycle, "B/cycle"),
    }
