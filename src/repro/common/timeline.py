"""Cycle-bucketed time series used by the metrics layer.

The paper's utilisation plots (Fig. 2(b)-(e), Fig. 14(b)) average lane usage
over buckets of 1000 consecutive cycles.  :class:`BucketSeries` accumulates
per-cycle samples into such buckets without storing every cycle, and
:class:`Timeline` records step changes (e.g. lane-allocation changes) as
``(cycle, value)`` breakpoints.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple


class BucketSeries:
    """Accumulate per-cycle numeric samples into fixed-size cycle buckets."""

    def __init__(self, bucket_cycles: int = 1000) -> None:
        if bucket_cycles < 1:
            raise ValueError("bucket_cycles must be positive")
        self.bucket_cycles = bucket_cycles
        self._sums: List[float] = []
        self._counts: List[int] = []

    def add(self, cycle: int, value: float) -> None:
        """Record ``value`` observed at ``cycle``."""
        index = cycle // self.bucket_cycles
        while len(self._sums) <= index:
            self._sums.append(0.0)
            self._counts.append(0)
        self._sums[index] += value
        self._counts[index] += 1

    def add_bulk(self, cycle: int, total: float, samples: int) -> None:
        """Record ``samples`` observations at ``cycle`` summing to ``total``.

        Bit-equivalent to ``samples`` same-cycle :meth:`add` calls whenever
        ``total`` equals their exact floating-point sum — the batch-execute
        backend's accounting primitive (its callers guarantee exactness by
        summing dyadic values).
        """
        if samples <= 0:
            return
        index = cycle // self.bucket_cycles
        while len(self._sums) <= index:
            self._sums.append(0.0)
            self._counts.append(0)
        self._sums[index] += total
        self._counts[index] += samples

    def add_range(self, start_cycle: int, end_cycle: int, value: float) -> None:
        """Record ``value`` once per cycle over ``[start_cycle, end_cycle)``.

        Equivalent to calling :meth:`add` for every cycle in the span but in
        O(buckets touched) — the batch-recording primitive the tickless
        scheduler uses for skipped spans (a span of thousands of slept
        cycles lands as a handful of bucket updates).
        """
        if end_cycle <= start_cycle:
            return
        size = self.bucket_cycles
        last_index = (end_cycle - 1) // size
        while len(self._sums) <= last_index:
            self._sums.append(0.0)
            self._counts.append(0)
        cursor = start_cycle
        while cursor < end_cycle:
            index = cursor // size
            bucket_end = (index + 1) * size
            span = min(end_cycle, bucket_end) - cursor
            self._sums[index] += value * span
            self._counts[index] += span
            cursor += span

    def averages(self) -> List[float]:
        """Average value in each bucket (0.0 for empty buckets)."""
        return [
            total / count if count else 0.0
            for total, count in zip(self._sums, self._counts)
        ]

    def totals(self) -> List[float]:
        """Sum of samples in each bucket."""
        return list(self._sums)

    def __len__(self) -> int:
        return len(self._sums)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        for index, average in enumerate(self.averages()):
            yield index * self.bucket_cycles, average


class Timeline:
    """A step function recorded as ``(cycle, value)`` breakpoints."""

    def __init__(self) -> None:
        self._points: List[Tuple[int, float]] = []

    def record(self, cycle: int, value: float) -> None:
        """Record that the tracked quantity became ``value`` at ``cycle``.

        Re-recording at the same cycle overwrites (the last write in a cycle
        wins, matching atomic table updates).
        """
        if self._points and self._points[-1][0] == cycle:
            self._points[-1] = (cycle, value)
            return
        if self._points and cycle < self._points[-1][0]:
            raise ValueError("timeline cycles must be non-decreasing")
        if self._points and self._points[-1][1] == value:
            return
        self._points.append((cycle, value))

    def record_range(self, start_cycle: int, end_cycle: int, value: float) -> None:
        """Record ``value`` over ``[start_cycle, end_cycle)``, then revert.

        Batch form used when a span of cycles is settled at once: the level
        that held before the span is restored at ``end_cycle``, so later
        point recordings continue from the pre-span value.
        """
        if end_cycle <= start_cycle:
            return
        resume = self.value_at(start_cycle)
        self.record(start_cycle, value)
        self.record(end_cycle, resume)

    def value_at(self, cycle: int) -> float:
        """Value of the step function at ``cycle`` (0.0 before first point)."""
        result = 0.0
        for point_cycle, value in self._points:
            if point_cycle > cycle:
                break
            result = value
        return result

    @property
    def points(self) -> Sequence[Tuple[int, float]]:
        """The recorded breakpoints, oldest first."""
        return tuple(self._points)

    def integrate(self, start: int, end: int) -> float:
        """Integral of the step function over ``[start, end)`` cycles."""
        if end <= start:
            return 0.0
        total = 0.0
        cursor = start
        level = self.value_at(start)
        for point_cycle, value in self._points:
            if point_cycle <= start:
                continue
            if point_cycle >= end:
                break
            total += level * (point_cycle - cursor)
            cursor = point_cycle
            level = value
        total += level * (end - cursor)
        return total

    def __len__(self) -> int:
        return len(self._points)
