"""Exception hierarchy for the Occamy reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base type.  Sub-classes are split by layer (configuration, assembly,
compilation, simulation) so tests can assert the failing layer precisely.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An invalid machine or policy configuration was supplied."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad operand, unknown label...)."""


class CompilationError(ReproError):
    """The kernel compiler rejected a kernel."""


class VectorizationError(CompilationError):
    """A loop could not be vectorized (unsupported construct)."""


class SimulationError(ReproError):
    """The machine reached an inconsistent state at simulation time."""


class DeadlockError(SimulationError):
    """No core made forward progress for an implausibly long window."""


class ProtocolError(SimulationError):
    """An EM-SIMD protocol rule was violated (e.g. freeing unowned lanes)."""


class InvariantViolation(SimulationError):
    """A runtime invariant audit found inconsistent machine state.

    Raised only when auditing is enabled (``REPRO_AUDIT`` / ``--audit``);
    see :mod:`repro.validation.invariants`.
    """
