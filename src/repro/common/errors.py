"""Exception hierarchy for the Occamy reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base type.  Sub-classes are split by layer (configuration, assembly,
compilation, simulation) so tests can assert the failing layer precisely.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An invalid machine or policy configuration was supplied."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad operand, unknown label...)."""


class CompilationError(ReproError):
    """The kernel compiler rejected a kernel."""


class VectorizationError(CompilationError):
    """A loop could not be vectorized (unsupported construct)."""


class SimulationError(ReproError):
    """The machine reached an inconsistent state at simulation time."""


class DeadlockError(SimulationError):
    """No core made forward progress for an implausibly long window."""


class ProtocolError(SimulationError):
    """An EM-SIMD protocol rule was violated (e.g. freeing unowned lanes)."""


class InvariantViolation(SimulationError):
    """A runtime invariant audit found inconsistent machine state.

    Raised only when auditing is enabled (``REPRO_AUDIT`` / ``--audit``);
    see :mod:`repro.validation.invariants`.
    """


class ServiceError(ReproError):
    """Base class for simulation-service (daemon/client) errors."""


class AdmissionError(ServiceError):
    """A job submission was rejected by admission control.

    Carries the machine-readable rejection ``reason`` (``queue-full``,
    ``client-quota``, ``draining``) so clients can distinguish transient
    backpressure (retry later) from permanent rejection.
    """

    def __init__(self, message: str, reason: str = "rejected") -> None:
        super().__init__(message)
        self.reason = reason


class JobFailedError(ServiceError):
    """A submitted job ran but terminated unsuccessfully."""


class ServiceProtocolError(ServiceError):
    """A malformed request or response crossed the service socket."""


class ServiceUnavailableError(ServiceError):
    """The simulation daemon could not be reached."""
