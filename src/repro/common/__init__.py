"""Shared infrastructure: errors, machine configuration, timelines.

Everything in this package is policy-free plumbing used by the ISA,
memory, co-processor and compiler layers.
"""

from repro.common.config import (
    CacheConfig,
    experiment_config,
    table4_config,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    VectorConfig,
)
from repro.common.errors import (
    AssemblyError,
    CompilationError,
    ConfigurationError,
    ReproError,
    SimulationError,
    VectorizationError,
)
from repro.common.timeline import BucketSeries, Timeline

__all__ = [
    "AssemblyError",
    "BucketSeries",
    "CacheConfig",
    "CompilationError",
    "ConfigurationError",
    "CoreConfig",
    "MachineConfig",
    "MemoryConfig",
    "ReproError",
    "SimulationError",
    "Timeline",
    "VectorConfig",
    "experiment_config",
    "table4_config",
    "VectorizationError",
]
