"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``motivate``
    Run the §2 motivating example on all four architectures.  With
    ``--cores N [N ...]`` it instead sweeps the N-core scaling matrix
    (§4.2.1 machines built by ``MachineConfig.scaled_to_cores``): the
    Fig. 16 workload blend tiled across 2/4/8/16/32 cores, each size
    co-run under private/occamy/fts/cts.
``pair SUITE MEM COMP``
    Co-run one Table 3 pair (e.g. ``pair spec 20 17``).
``roofline OI_ISSUE OI_MEM``
    Print the Eq. 4 ceilings and greedy partitions for an intensity.
``table5``
    Reproduce Table 5 exactly.
``area``
    Print the Fig. 12 area breakdown.
``trace SUITE MEM COMP OUT.json``
    Run a pair under Occamy and export a JSON trace + ASCII Gantt.
``figures OUTPUT_DIR``
    Render the motivating example's figures as SVG files.
``report OUT.md``
    Run a slice of the evaluation and write a Markdown report.
``perf-report``
    Generate the tracked performance report: folds the ``BENCH_*.json``
    perf-trajectory records the benchmark suite emits together with an
    ECM-vs-simulator cycle-prediction error table (see
    ``docs/perf-model.md``).  ``--bench-dir`` points at the artifact
    directory, ``--out`` writes the markdown, ``--skip-validation``
    omits the (simulation-running) ECM sweep.
``diff-fuzz``
    Cross-engine differential fuzzing: random co-run programs executed
    through every fast-path combination (ninety-five engines: pre-decode
    x fast-forward x loop-replay x event-wheel x batch-exec x
    hierarchical-wheel x lane-shards, minus the hier-without-wheel
    duplicates) under every sharing mode, full run fingerprints diffed
    against the seed interpreter.  ``--cores N`` widens the generated
    co-runs to N-core machines; ``--engines key`` restricts the sweep to
    the curated high-signal combinations for expensive smokes.
    Diverging cases are shrunk to minimal repros and emitted as
    regression tests.
``alloc-sweep``
    Sweep thread-to-core allocation (pairing) policies on large
    machines: the Fig. 16 blend tiled across ``--cores N`` machines,
    placed into two-core complexes by each ``--alloc`` policy (random /
    round-robin / oi-balance / oi-pack / symbiosis), every complex then
    co-run under the ``--policies`` sharing modes.  ``--calibrate``
    refines the symbiosis compatibility matrix with short cached micro
    co-runs; ``--report OUT.json`` emits per-pair cycles plus run-
    fingerprint digests (CI asserts the digests are placement-
    invariant).  See ``docs/allocation.md``.
``serve``
    Run the simulation daemon: a long-lived asyncio service owning a
    supervised worker pool, admitting jobs over a local socket with
    explicit backpressure and a pluggable scheduling policy
    (fifo / spjf / fair).  See ``docs/service.md``.
``submit KIND ...``
    Submit one job to a running daemon and stream its progress events;
    prints the served result summary (cycle counts + fingerprint
    digests).  Identical concurrent submissions coalesce server-side to
    a single execution.
``svc-status``
    Query a running daemon (queue depth, workers, counters); ``--drain``
    quiesces it, ``--shutdown`` stops it.
``cache``
    Inspect and bound the persistent result cache: ``stats``, ``prune``
    (``--max-bytes`` / ``--max-entries``, evicting oldest first) and
    ``clear``.

Simulation commands accept these runtime options:

``--jobs N``
    Fan simulations across ``N`` worker processes (``auto`` = all CPUs;
    default ``$REPRO_JOBS``, else serial).  Results are bit-identical to
    a serial run.  Zero, negative or non-integer values are rejected
    with a ``ConfigurationError``.
``--cache-dir DIR``
    Persistent result-cache location (default ``$REPRO_CACHE_DIR``, else
    ``~/.cache/repro``); warm re-runs of a figure skip simulation.
``--no-cache``
    Disable the persistent cache for this invocation.
``--profile``
    After the command, print how the simulated cycles were covered:
    interpreted cycle-by-cycle, skipped by the idle fast-forward, or
    replayed from steady-loop templates — plus, under the tickless
    event-wheel engine, per-component busy / idle-stepped / asleep
    cycle counts.  Only runs simulated in *this*
    process are counted — cached results and ``--jobs N`` worker
    processes contribute nothing, so use ``--jobs 1 --no-cache`` for a
    complete attribution.
``--audit``
    Enable runtime invariant auditing (sets ``REPRO_AUDIT`` so worker
    processes inherit it): every simulated cycle cross-checks lane
    conservation, ROB retire ordering, physical-register accounting and
    bandwidth-queue bookkeeping, raising
    :class:`~repro.common.errors.InvariantViolation` on the first
    inconsistency.  Audited runs are bit-identical, just slower.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.area import area_model
from repro.analysis.experiments import motivation_fig2, pair_outcome, table5_rows
from repro.analysis.reporting import format_table
from repro.analysis.trace import export_trace, phase_gantt
from repro.common.config import (
    experiment_config,
    table4_config,
    validate_core_count,
    validate_core_counts,
)
from repro.core.partition import greedy_partition
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue
from repro.workloads.pairs import CoRunPair

POLICY_KEYS = ("private", "fts", "vls", "occamy")


def _cmd_motivate(args: argparse.Namespace) -> int:
    if args.cores:
        args.cores = validate_core_counts(args.cores)
        return _motivate_ncore(args)
    if args.alloc:
        from repro.common.errors import ConfigurationError

        raise ConfigurationError("--alloc requires --cores (an N-core sweep)")
    result = motivation_fig2(scale=args.scale, jobs=args.jobs)
    rows = []
    for key in POLICY_KEYS:
        run = result.results[key]
        rows.append(
            [
                key,
                run.core_time(0),
                run.core_time(1),
                f"{result.speedup(key, 0):.2f}x",
                f"{result.speedup(key, 1):.2f}x",
                f"{100 * result.utilization(key):.1f}%",
            ]
        )
    print(format_table(["arch", "WL#0", "WL#1", "sp0", "sp1", "util"], rows))
    print("\nOccamy lane plans:")
    for cycle, plan in result.results["occamy"].lane_manager.plan_history:
        print(f"  {cycle:>8}: {plan}")
    return 0


def _motivate_ncore(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import NCORE_POLICY_KEYS, ncore_outcome

    if args.alloc:
        from repro.analysis.experiments import alloc_outcome

        for num_cores in args.cores:
            outcome = alloc_outcome(
                num_cores, args.alloc, scale=args.scale, calibrate=args.calibrate
            )
            rows = [
                [outcome.pair_label(index), result.total_cycles]
                for index, result in enumerate(outcome.results)
            ]
            print(
                f"\n{num_cores} cores, alloc={args.alloc}, "
                f"sharing={outcome.sharing_key}:"
            )
            print(format_table(["pair", "cycles"], rows))
            print(f"per-thread geomean: {outcome.geomean_cycles():.1f}")
        return 0
    for num_cores in args.cores:
        outcome = ncore_outcome(num_cores, scale=args.scale)
        rows = []
        for key in NCORE_POLICY_KEYS:
            run = outcome.results[key]
            rows.append(
                [
                    key,
                    run.total_cycles,
                    f"{outcome.geomean_speedup(key):.2f}x",
                    f"{100 * outcome.utilization(key):.1f}%",
                ]
            )
        group = ",".join(str(workload) for workload in outcome.group)
        print(f"\n{num_cores} cores (workloads {group}):")
        print(format_table(["arch", "cycles", "geomean", "util"], rows))
    return 0


def _cmd_pair(args: argparse.Namespace) -> int:
    pair = CoRunPair(args.suite, args.mem, args.comp)
    outcome = pair_outcome(pair, scale=args.scale, jobs=args.jobs)
    rows = []
    for key in POLICY_KEYS:
        rows.append(
            [
                key,
                f"{outcome.speedup(key, 0):.2f}x",
                f"{outcome.speedup(key, 1):.2f}x",
                f"{100 * outcome.utilization(key):.1f}%",
                f"{100 * outcome.rename_stall_fraction(key, 1):.0f}%",
            ]
        )
    print(f"pair {pair}:")
    print(format_table(["arch", "sp0", "sp1", "util", "rename(c1)"], rows))
    return 0


def _cmd_roofline(args: argparse.Namespace) -> int:
    config = table4_config()
    roofline = RooflineModel.from_config(config)
    oi = OIValue(issue=args.oi_issue, mem=args.oi_mem, level=args.level)
    rows = [
        [
            lanes,
            f"{roofline.fp_peak(lanes) * 2:.1f}",
            f"{roofline.issue_bound(lanes, oi) * 2:.1f}",
            f"{roofline.mem_bound(oi) * 2:.1f}",
            f"{roofline.attainable_gflops(lanes, oi):.1f}",
        ]
        for lanes in (1, 2, 4, 8, 12, 16, 20, 24, 28, 32)
    ]
    print(format_table(["lanes", "comp", "issue", "mem", "attainable"], rows))
    print(f"saturation: {roofline.saturation_lanes(oi)} lanes")
    other = OIValue(0.6, 1.0, level="vec_cache")
    plan = greedy_partition({0: oi, 1: other}, 32, roofline)
    print(f"vs a wsm5-style co-runner the greedy plan is {plan}")
    return 0


def _cmd_table5(args: argparse.Namespace) -> int:
    rows = [
        [
            int(row["vl"]),
            f"{row['simd_issue_bound']:.1f}",
            f"{row['mem_bound']:.1f}",
            f"{row['comp_bound']:.1f}",
            f"{row['performance']:.1f}",
        ]
        for row in table5_rows(table4_config())
    ]
    print(format_table(["VL", "IssueBound", "MemBound", "CompBound", "Perf"], rows))
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    config = table4_config(num_cores=args.cores)
    rows = []
    for key in POLICY_KEYS:
        breakdown = area_model(config, key)
        rows.append([key, f"{breakdown.total:.3f}"])
    print(format_table(["arch", f"area mm^2 ({args.cores}-core)"], rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    pair = CoRunPair(args.suite, args.mem, args.comp)
    outcome = pair_outcome(pair, scale=args.scale, jobs=args.jobs)
    result = outcome.results["occamy"]
    export_trace(result, args.output)
    print(phase_gantt(result))
    print(f"\ntrace written to {args.output}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.plots import lane_timeline_svg, series_svg, write_svg

    os.makedirs(args.output_dir, exist_ok=True)
    result = motivation_fig2(scale=args.scale, jobs=args.jobs)
    occamy = result.results["occamy"]
    write_svg(
        lane_timeline_svg(
            {
                "core0 (WL#0)": occamy.metrics.lane_timeline[0].points,
                "core1 (WL#1)": occamy.metrics.lane_timeline[1].points,
            },
            total_cycles=occamy.total_cycles,
            title="Occamy elastic lane schedule (Fig. 8)",
        ),
        os.path.join(args.output_dir, "fig8_lane_plan.svg"),
    )
    for key in ("private", "occamy"):
        write_svg(
            series_svg(
                {
                    "core0": result.lane_series(key, 0),
                    "core1": result.lane_series(key, 1),
                },
                title=f"Busy lanes — {key}",
            ),
            os.path.join(args.output_dir, f"fig2_busy_lanes_{key}.svg"),
        )
    print(f"figures written to {args.output_dir}/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    write_report(args.output, scale=args.scale, pairs_limit=args.pairs, jobs=args.jobs)
    print(f"report written to {args.output}")
    return 0


def _cmd_perf_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.perf_report import generate_perf_report
    from repro.analysis.validation import ECM_VALIDATION_POLICIES

    workload_ids = None
    if args.workloads:
        workload_ids = [int(token) for token in args.workloads.split(",")]
    policies = (
        tuple(args.policies.split(",")) if args.policies else ECM_VALIDATION_POLICIES
    )
    ncore_counts = validate_core_counts(args.cores) if args.cores else None
    alloc_counts = (
        validate_core_counts(args.alloc_cores, source="--alloc-cores")
        if args.alloc_cores
        else None
    )
    text = generate_perf_report(
        bench_dir=Path(args.bench_dir),
        out=Path(args.out) if args.out else None,
        scale=args.scale,
        workload_ids=workload_ids,
        policies=policies,
        validate=not args.skip_validation,
        ncore_counts=ncore_counts,
        alloc_counts=alloc_counts,
    )
    if args.out:
        print(f"perf report written to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_alloc_sweep(args: argparse.Namespace) -> int:
    import hashlib
    import json

    from repro.alloc import ALLOC_POLICY_KEYS
    from repro.analysis.experiments import alloc_sweep
    from repro.validation.fingerprint import run_fingerprint

    core_counts = validate_core_counts(args.cores)
    alloc_keys = tuple(args.alloc.split(",")) if args.alloc else ALLOC_POLICY_KEYS
    sharing_keys = tuple(args.policies.split(",")) if args.policies else ("occamy",)
    outcomes = alloc_sweep(
        core_counts,
        alloc_keys=alloc_keys,
        sharing_keys=sharing_keys,
        scale=args.scale,
        seed=args.seed,
        calibrate=args.calibrate,
    )
    report = []
    for outcome in outcomes:
        rows = []
        pairs = []
        for index, result in enumerate(outcome.results):
            digest = hashlib.sha256(
                repr(run_fingerprint(result)).encode("utf-8")
            ).hexdigest()
            rows.append([outcome.pair_label(index), result.total_cycles, digest[:16]])
            pairs.append(
                {
                    "label": outcome.pair_label(index),
                    "workloads": list(outcome.complex_workloads(index)),
                    "cycles": result.total_cycles,
                    "fingerprint": digest,
                }
            )
        print(
            f"\n{outcome.num_cores} cores, alloc={outcome.alloc_key}, "
            f"sharing={outcome.sharing_key}:"
        )
        print(format_table(["pair", "cycles", "fingerprint"], rows))
        print(f"per-thread geomean: {outcome.geomean_cycles():.1f}")
        report.append(
            {
                "num_cores": outcome.num_cores,
                "alloc": outcome.alloc_key,
                "sharing": outcome.sharing_key,
                "geomean_cycles": outcome.geomean_cycles(),
                "pairs": pairs,
            }
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump({"sweep": report}, handle, indent=2, sort_keys=True)
        print(f"\nreport written to {args.report}")
    return 0


def _cmd_diff_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.core.policies import POLICIES_BY_KEY
    from repro.validation.difftest import (
        DEFAULT_POLICIES,
        FAST_ENGINES,
        KEY_ENGINES,
        BASELINE_ENGINE,
        fuzz_seeds,
    )

    if args.policies:
        policies = tuple(args.policies.split(","))
        unknown = [key for key in policies if key not in POLICIES_BY_KEY]
        if unknown:
            print(f"unknown policies: {', '.join(unknown)}", file=sys.stderr)
            return 2
    else:
        policies = DEFAULT_POLICIES
    engines = KEY_ENGINES if args.engines == "key" else FAST_ENGINES
    cores = validate_core_count(args.cores)
    seeds = list(range(args.start, args.start + args.seeds))
    runs = len(seeds) * len(policies) * (len(engines) + 1)
    alloc_note = f", alloc={args.alloc}" if args.alloc else ""
    print(
        f"diff-fuzz: {len(seeds)} case(s), {cores} cores{alloc_note}, "
        f"policies {', '.join(policies)}, "
        f"{len(engines)} engine(s) vs {BASELINE_ENGINE.label} "
        f"({runs} runs)"
    )
    report = fuzz_seeds(
        seeds,
        policies=policies,
        engines=engines,
        audit=True if args.audit else None,
        progress=print,
        num_cores=cores,
        alloc=args.alloc,
    )
    if report.clean:
        print(f"OK: {report.runs} runs, all engines bit-identical")
    else:
        print(f"FAIL: {len(report.divergences)} divergence(s)")
        for divergence in report.divergences:
            print(f"  {divergence}")
            for line in divergence.detail:
                print(f"    {line}")
    if not report.clean and not args.no_shrink:
        from repro.validation.difftest import EngineSpec
        from repro.validation.shrink import shrink_case, write_regression_test

        engines_by_label = {engine.label: engine for engine in FAST_ENGINES}
        emitted = set()
        for divergence in report.divergences[: args.shrink_limit]:
            key = (divergence.policy, divergence.engine)
            if key in emitted:
                continue
            emitted.add(key)
            engine = engines_by_label[divergence.engine]
            print(
                f"shrinking seed {divergence.seed} "
                f"({divergence.policy}/{divergence.engine}) ..."
            )
            minimal = shrink_case(divergence.spec, divergence.policy, engine)
            path = write_regression_test(
                minimal, divergence.policy, engine, args.emit_dir
            )
            print(f"  minimized repro written to {path}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2)
        print(f"report written to {args.report}")
    return 0 if report.clean else 1


def _resolve_runner(dotted: str):
    """Import a ``package.module:callable`` job runner (serve --runner)."""
    import importlib

    from repro.common.errors import ConfigurationError

    module_name, sep, attr = dotted.partition(":")
    if not sep or not module_name or not attr:
        raise ConfigurationError(
            f"--runner must look like package.module:callable, got {dotted!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(f"cannot import runner module: {exc}") from None
    runner = getattr(module, attr, None)
    if not callable(runner):
        raise ConfigurationError(
            f"{dotted!r} does not name a callable in {module_name}"
        )
    return runner


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import ServerOptions, SimulationServer

    kwargs = {}
    if args.runner:
        kwargs["runner"] = _resolve_runner(args.runner)
    options = ServerOptions(
        address=args.socket,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_per_client=args.max_per_client,
        scheduler=args.sched,
        job_timeout=args.job_timeout if args.job_timeout > 0 else None,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        recycle_after=args.recycle_after if args.recycle_after > 0 else None,
        **kwargs,
    )
    server = SimulationServer(options)
    print(
        f"repro daemon: serving on {server.address} "
        f"({options.workers} worker(s), sched={options.scheduler}, "
        f"queue depth {options.queue_depth})",
        flush=True,
    )
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    print("repro daemon: stopped")
    return 0


def _print_submit_event(event: dict) -> None:
    kind = event.get("event")
    if kind == "queued":
        note = []
        if event.get("coalesced"):
            note.append("coalesced onto in-flight job")
        if event.get("cached"):
            note.append("served from result cache")
        suffix = f" ({', '.join(note)})" if note else ""
        print(f"[{event.get('job')}] queued{suffix}")
    elif kind == "started":
        print(
            f"[{event.get('job')}] started on worker {event.get('worker')} "
            f"(attempt {event.get('attempt')})"
        )
    elif kind == "retrying":
        print(
            f"[{event.get('job')}] retrying after {event.get('reason')}: "
            f"{event.get('error')}"
        )


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.common.errors import ServiceError
    from repro.service.client import ServiceClient
    from repro.service.specs import spec_for_motivate, spec_for_pair

    if args.kind == "pair":
        spec = spec_for_pair(
            args.suite, args.mem, args.comp, policy=args.policy, scale=args.scale
        )
    else:
        spec = spec_for_motivate(policy=args.policy, scale=args.scale)
    on_event = None if args.json else _print_submit_event
    try:
        with ServiceClient(args.socket, timeout=args.timeout) as client:
            final = client.submit(
                spec,
                client=args.client,
                wait=not args.no_wait,
                on_event=on_event,
                timeout=args.timeout,
                raise_on_failure=False,
            )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(final, indent=2, sort_keys=True))
        return 0 if final.get("event") != "failed" else 1
    if final.get("event") == "failed":
        print(f"[{final.get('job')}] FAILED: {final.get('error')}", file=sys.stderr)
        return 1
    if args.no_wait:
        return 0
    result = final.get("result") or {}
    print(
        f"[{final.get('job')}] done: policy={result.get('policy')} "
        f"total_cycles={result.get('total_cycles')} "
        f"core_cycles={result.get('core_cycles')}"
        + (" [cached]" if final.get("cached") else "")
    )
    for section, digest in sorted((result.get("fingerprint") or {}).items()):
        print(f"  {section:<20} {digest[:16]}")
    return 0


def _print_daemon_status(status: dict) -> None:
    queue = status.get("queue", {})
    workers = status.get("workers", {})
    counters = status.get("counters", {})
    print(
        f"daemon pid {status.get('pid')} up {status.get('uptime_s')}s "
        f"at {status.get('address')} "
        f"(sched={status.get('scheduler')}, "
        f"draining={status.get('draining')})"
    )
    print(
        f"queue: {queue.get('depth')}/{queue.get('max_depth')} queued, "
        f"workers {workers.get('busy')}/{workers.get('size')} busy "
        f"(pids {workers.get('pids')}, {workers.get('recycled')} recycled)"
    )
    print(
        "counters: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
    )


def _print_fleet_totals(totals: dict) -> None:
    counters = totals.get("counters", {})
    print(
        f"fleet: {totals.get('reachable')}/{totals.get('shards')} shards "
        f"reachable, {totals.get('queued')} queued, "
        f"{totals.get('busy_workers')}/{totals.get('workers')} workers busy, "
        f"cache hit rate {totals.get('cache_hit_rate')}"
    )
    print(
        "fleet counters: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
    )


def _print_shard_line(label: str, status) -> None:
    if not status or not status.get("ok"):
        detail = (status or {}).get("error", "unreachable")
        print(f"  {label}: UNREACHABLE ({detail})")
        return
    queue = status.get("queue", {})
    workers = status.get("workers", {})
    counters = status.get("counters", {})
    submitted = counters.get("submitted", 0)
    print(
        f"  {label}: pid {status.get('pid')}, "
        f"queue {queue.get('depth')}/{queue.get('max_depth')}, "
        f"workers {workers.get('busy')}/{workers.get('size')} busy, "
        f"cache_hits {counters.get('cache_hits', 0)}/{submitted}, "
        f"retries {counters.get('retries', 0)}"
    )


def _cmd_svc_status(args: argparse.Namespace) -> int:
    import json

    from repro.common.errors import ServiceError
    from repro.service.client import ServiceClient

    sockets = args.socket or [None]
    if len(sockets) == 1:
        # Single daemon: the original detailed view (and the only mode
        # where --drain/--shutdown stop one specific daemon).
        try:
            with ServiceClient(sockets[0], timeout=args.timeout) as client:
                if args.drain:
                    reply = client.drain(timeout=args.timeout)
                    print(f"drained {reply.get('drained', 0)} pending job(s)")
                status = client.status()
                if args.shutdown:
                    client.shutdown()
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            _print_daemon_status(status)
        if args.shutdown:
            print("shutdown requested")
        return 0

    # Fleet mode: query every shard, aggregate instead of erroring.
    from repro.service.fleet import aggregate_statuses

    statuses = []
    for address in sockets:
        try:
            with ServiceClient(address, timeout=args.timeout) as client:
                if args.drain:
                    client.drain(timeout=args.timeout)
                status = client.status()
                if args.shutdown:
                    client.shutdown()
            statuses.append(status)
        except ServiceError as exc:
            statuses.append({"ok": False, "error": str(exc)})
    totals = aggregate_statuses(statuses)
    if args.json:
        print(
            json.dumps(
                {
                    "ok": totals.get("reachable", 0) > 0,
                    "totals": totals,
                    "shards": [
                        {"address": address, "status": status}
                        for address, status in zip(sockets, statuses)
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        _print_fleet_totals(totals)
        for address, status in zip(sockets, statuses):
            _print_shard_line(str(address), status)
    if args.shutdown:
        print("shutdown requested")
    return 0 if totals.get("reachable", 0) == len(sockets) else 1


# --- fleet: gateway + daemon supervision --------------------------------------

#: Default gateway URL for the fleet client commands.
FLEET_HTTP_ENV = "REPRO_FLEET_HTTP"
DEFAULT_FLEET_HTTP = "http://127.0.0.1:8765"


def _fleet_url(args: argparse.Namespace, path: str) -> str:
    base = args.http or os.environ.get(FLEET_HTTP_ENV) or DEFAULT_FLEET_HTTP
    if "://" not in base:
        base = "http://" + base
    return base.rstrip("/") + path


def _http_json(url: str, method: str = "GET", body=None, timeout: float = 600.0):
    """One JSON request against the gateway; returns (status, payload)."""
    import json
    import urllib.error
    import urllib.request

    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"ok": False, "error": "http", "detail": raw[:200].decode("latin-1")}
        return exc.code, payload
    except (urllib.error.URLError, OSError) as exc:
        from repro.common.errors import ServiceUnavailableError

        raise ServiceUnavailableError(f"cannot reach gateway at {url}: {exc}") from None


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    from repro.service.fleet import FleetManager
    from repro.service.gateway import Gateway, GatewayOptions

    host, _, port_text = args.http_bind.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        from repro.common.errors import ConfigurationError

        raise ConfigurationError(
            f"--http must look like HOST:PORT, got {args.http_bind!r}"
        ) from None
    if args.runner:
        _resolve_runner(args.runner)  # fail fast before spawning daemons
    manager = FleetManager(
        base_dir=args.base_dir,
        workers=args.workers,
        scheduler=args.sched,
        queue_depth=args.queue_depth,
        max_per_client=args.max_per_client,
        job_timeout=args.job_timeout,
        runner=args.runner,
    )
    print(
        f"repro fleet: starting {args.count} daemon(s) "
        f"({args.workers} worker(s) each, sched={args.sched}) ...",
        flush=True,
    )
    try:
        manager.start(args.count)
        for shard in manager.shards():
            print(f"  {shard.name}: pid {shard.pid} on {shard.address}", flush=True)
        gateway = Gateway(
            GatewayOptions(
                host=host or "127.0.0.1",
                port=port,
                routing=args.routing,
                steal_threshold=args.steal_threshold,
                fleet=manager,
            )
        )
        print(
            f"repro fleet: gateway on http://{host or '127.0.0.1'}:{port} "
            f"(routing={args.routing})",
            flush=True,
        )
        try:
            gateway.run()
        except KeyboardInterrupt:
            pass
    finally:
        manager.stop_all()
    print("repro fleet: stopped")
    return 0


def _fleet_request(args: argparse.Namespace, path: str, method="GET", body=None):
    """Gateway request with connection errors turned into exit code 2."""
    from repro.common.errors import ServiceError

    try:
        return _http_json(
            _fleet_url(args, path), method=method, body=body, timeout=args.timeout
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, None


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import json

    code, payload = _fleet_request(args, "/status")
    if code is None:
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if code == 200 and payload.get("ok") else 1
    gateway = payload.get("gateway", {})
    print(
        f"gateway {gateway.get('http')} up {gateway.get('uptime_s')}s "
        f"(routing={gateway.get('routing')}, "
        f"{gateway.get('alive')} shard(s) alive)"
    )
    print(
        "gateway counters: "
        + ", ".join(
            f"{k}={v}" for k, v in sorted((gateway.get("counters") or {}).items())
        )
    )
    _print_fleet_totals(payload.get("totals", {}))
    for entry in payload.get("shards", []):
        label = f"{entry.get('shard')} {entry.get('address')}"
        _print_shard_line(label, entry.get("status"))
    return 0 if code == 200 and payload.get("ok") else 1


def _cmd_fleet_drain(args: argparse.Namespace) -> int:
    code, payload = _fleet_request(args, "/drain", method="POST")
    if code is None:
        return 2
    if code == 200 and payload.get("ok"):
        print(f"drained {payload.get('drained', 0)} pending job(s) fleet-wide")
        return 0
    print(f"error: {payload.get('detail', payload)}", file=sys.stderr)
    return 2


def _cmd_fleet_scale(args: argparse.Namespace) -> int:
    code, payload = _fleet_request(args, "/scale", method="POST", body={"n": args.n})
    if code is None:
        return 2
    if code == 200 and payload.get("ok"):
        shards = payload.get("shards", [])
        print(f"fleet scaled to {len(shards)} shard(s):")
        for entry in shards:
            print(f"  {entry.get('shard')}: {entry.get('address')}")
        return 0
    print(f"error: {payload.get('detail', payload)}", file=sys.stderr)
    return 2


def _cmd_fleet_stop(args: argparse.Namespace) -> int:
    code, payload = _fleet_request(
        args, "/shutdown", method="POST", body={"drain": bool(args.drain)}
    )
    if code is None:
        return 2
    if code == 200 and payload.get("ok"):
        print("fleet shutdown requested")
        return 0
    print(f"error: {payload.get('detail', payload)}", file=sys.stderr)
    return 2


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.analysis.result_cache import ResultCache

    cache = ResultCache(args.inspect_cache_dir)
    if args.cache_op == "stats":
        stats = cache.stats()
        print(f"cache directory : {stats.directory}")
        print(f"entries         : {stats.entries}")
        print(f"total bytes     : {stats.total_bytes}")
        if args.verbose:
            for entry in cache.entries():
                print(f"  {entry.key[:16]}  {entry.size_bytes:>10}  {entry.mtime:.0f}")
    elif args.cache_op == "prune":
        if args.max_bytes is None and args.max_entries is None:
            print(
                "error: prune needs --max-bytes and/or --max-entries",
                file=sys.stderr,
            )
            return 2
        removed = cache.prune(max_bytes=args.max_bytes, max_entries=args.max_entries)
        stats = cache.stats()
        print(
            f"pruned {removed} entr{'y' if removed == 1 else 'ies'}; "
            f"{stats.entries} left ({stats.total_bytes} bytes)"
        )
    elif args.cache_op == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Occamy (ASPLOS 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared runtime options for every command that runs simulations.
    runtime = argparse.ArgumentParser(add_help=False)
    runtime.add_argument(
        "--jobs",
        type=str,
        default=None,
        metavar="N",
        help="worker processes ('auto' = all CPUs; default $REPRO_JOBS, "
        "else serial; non-positive values are rejected)",
    )
    runtime.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent result-cache directory (default $REPRO_CACHE_DIR, "
        "else ~/.cache/repro)",
    )
    runtime.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )
    runtime.add_argument(
        "--profile",
        action="store_true",
        help="print simulated-cycle attribution (interpreted vs "
        "fast-forwarded vs loop-replayed, plus per-component busy/asleep "
        "counts under the event-wheel engine) after the command; only runs "
        "simulated in this process are counted, so combine with --jobs 1 "
        "(and --no-cache) for a complete picture",
    )
    runtime.add_argument(
        "--audit",
        action="store_true",
        help="enable runtime invariant auditing (REPRO_AUDIT): every cycle "
        "cross-checks lane/ROB/renamer/bandwidth accounting and raises "
        "InvariantViolation on the first inconsistency",
    )

    motivate = sub.add_parser(
        "motivate", help="run the §2 motivating example", parents=[runtime]
    )
    motivate.add_argument("--scale", type=float, default=0.5)
    motivate.add_argument(
        "--cores", nargs="+", default=None, metavar="N",
        help="instead of the 2-core Fig. 2 pair, sweep the N-core scaling "
        "matrix (Fig. 16 blend tiled across each machine size, co-run "
        "under private/occamy/fts/cts); e.g. --cores 8 16 32",
    )
    motivate.add_argument(
        "--alloc", default=None, metavar="POLICY",
        help="with --cores: place the blend with this allocation policy "
        "(random / round-robin / oi-balance / oi-pack / symbiosis) and "
        "report per-pair cycles instead of the sharing-mode matrix",
    )
    motivate.add_argument(
        "--calibrate", action="store_true",
        help="with --alloc symbiosis: refine the ECM compatibility matrix "
        "with short micro co-runs (cached)",
    )
    motivate.set_defaults(func=_cmd_motivate)

    pair = sub.add_parser(
        "pair", help="co-run one Table 3 pair", parents=[runtime]
    )
    pair.add_argument("suite", choices=("spec", "opencv"))
    pair.add_argument("mem", type=int)
    pair.add_argument("comp", type=int)
    pair.add_argument("--scale", type=float, default=0.5)
    pair.set_defaults(func=_cmd_pair)

    roofline = sub.add_parser("roofline", help="explore the Eq. 4 roofline")
    roofline.add_argument("oi_issue", type=float)
    roofline.add_argument("oi_mem", type=float)
    roofline.add_argument(
        "--level", choices=("dram", "l2", "vec_cache"), default="dram"
    )
    roofline.set_defaults(func=_cmd_roofline)

    table5 = sub.add_parser("table5", help="reproduce Table 5")
    table5.set_defaults(func=_cmd_table5)

    area = sub.add_parser("area", help="Fig. 12 area model")
    area.add_argument("--cores", type=int, default=2)
    area.set_defaults(func=_cmd_area)

    trace = sub.add_parser(
        "trace", help="export a JSON trace of a pair run", parents=[runtime]
    )
    trace.add_argument("suite", choices=("spec", "opencv"))
    trace.add_argument("mem", type=int)
    trace.add_argument("comp", type=int)
    trace.add_argument("output")
    trace.add_argument("--scale", type=float, default=0.3)
    trace.set_defaults(func=_cmd_trace)

    figures = sub.add_parser(
        "figures", help="render SVG figures", parents=[runtime]
    )
    figures.add_argument("output_dir")
    figures.add_argument("--scale", type=float, default=0.4)
    figures.set_defaults(func=_cmd_figures)

    report = sub.add_parser(
        "report",
        help="write a Markdown reproduction report",
        parents=[runtime],
    )
    report.add_argument("output")
    report.add_argument("--scale", type=float, default=0.4)
    report.add_argument("--pairs", type=int, default=6)
    report.set_defaults(func=_cmd_report)

    perf_report = sub.add_parser(
        "perf-report",
        help="generate the tracked markdown perf report",
    )
    perf_report.add_argument(
        "--bench-dir", default=".",
        help="directory searched (recursively) for BENCH_*.json records",
    )
    perf_report.add_argument(
        "--out", default=None, metavar="OUT.md",
        help="write the report here (default: print to stdout)",
    )
    perf_report.add_argument(
        "--scale", type=float, default=0.05,
        help="workload scale for the ECM validation sweep (default 0.05)",
    )
    perf_report.add_argument(
        "--workloads", default=None, metavar="IDS",
        help="comma-separated Table 3 workload ids (default: all 22)",
    )
    perf_report.add_argument(
        "--policies", default=None, metavar="KEYS",
        help="comma-separated sharing policies (default occamy,fts,cts)",
    )
    perf_report.add_argument(
        "--skip-validation", action="store_true",
        help="skip the ECM-vs-simulator sweep (report benches only)",
    )
    perf_report.add_argument(
        "--cores", nargs="+", default=None, metavar="N",
        help="add the N-core scaling section: per-core-count geomean "
        "speedups of occamy/fts/cts over Private on the tiled Fig. 16 "
        "blend (e.g. --cores 8 16 32)",
    )
    perf_report.add_argument(
        "--alloc-cores", nargs="+", default=None, metavar="N",
        help="add the allocation section: every pairing policy swept at "
        "each size plus the per-pair sharing win/loss table under the "
        "symbiosis placement (e.g. --alloc-cores 16)",
    )
    perf_report.set_defaults(func=_cmd_perf_report)

    diff_fuzz = sub.add_parser(
        "diff-fuzz",
        help="cross-engine differential fuzzing",
        parents=[runtime],
    )
    diff_fuzz.add_argument(
        "--seeds", type=int, default=50, metavar="N",
        help="number of random cases (default 50)",
    )
    diff_fuzz.add_argument(
        "--start", type=int, default=0, metavar="SEED",
        help="first seed (cases use seeds START..START+N-1)",
    )
    diff_fuzz.add_argument(
        "--policies", default=None, metavar="KEYS",
        help="comma-separated policy keys (default occamy,fts,cts — one "
        "per sharing mode)",
    )
    diff_fuzz.add_argument(
        "--cores", default=2, metavar="N",
        help="generate N-core co-run cases on an N-core machine "
        "(default 2)",
    )
    diff_fuzz.add_argument(
        "--alloc", default=None, metavar="POLICY",
        help="split each generated N-core case into two-core complexes "
        "with this allocation policy and diff every complex "
        "independently — exercises the placement layer's simulation "
        "invariance",
    )
    diff_fuzz.add_argument(
        "--engines", choices=("all", "key"), default="all",
        help="'all' diffs every fast-path combination (ninety-five "
        "engines); 'key' only the curated high-signal combos — "
        "everything-on, the prior-generation stack, each new axis "
        "alone and each left out (default all)",
    )
    diff_fuzz.add_argument(
        "--report", default=None, metavar="OUT.json",
        help="write a JSON divergence report",
    )
    diff_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="skip shrinking diverging cases",
    )
    diff_fuzz.add_argument(
        "--shrink-limit", type=int, default=3, metavar="N",
        help="shrink at most N divergences (default 3)",
    )
    diff_fuzz.add_argument(
        "--emit-dir", default="tests/regressions", metavar="DIR",
        help="directory for emitted regression tests "
        "(default tests/regressions)",
    )
    diff_fuzz.set_defaults(func=_cmd_diff_fuzz)

    alloc_sweep = sub.add_parser(
        "alloc-sweep",
        help="sweep thread-to-core allocation policies on large machines",
        parents=[runtime],
    )
    alloc_sweep.add_argument(
        "--cores", nargs="+", default=["16"], metavar="N",
        help="machine sizes to sweep (default 16); threads are the tiled "
        "Fig. 16 blend, placed into two-core complexes",
    )
    alloc_sweep.add_argument(
        "--alloc", default=None, metavar="KEYS",
        help="comma-separated allocation policies (default: all of "
        "random, round-robin, oi-balance, oi-pack, symbiosis)",
    )
    alloc_sweep.add_argument(
        "--policies", default=None, metavar="KEYS",
        help="comma-separated sharing policies run inside each complex "
        "(default occamy)",
    )
    alloc_sweep.add_argument("--scale", type=float, default=0.2)
    alloc_sweep.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="seed for the random placement baseline (default 0)",
    )
    alloc_sweep.add_argument(
        "--calibrate", action="store_true",
        help="refine the symbiosis matrix with short micro co-runs "
        "(cached; only affects the symbiosis policy)",
    )
    alloc_sweep.add_argument(
        "--report", default=None, metavar="OUT.json",
        help="write a JSON report with per-pair cycles and run-"
        "fingerprint digests (CI asserts digests are placement-"
        "invariant)",
    )
    alloc_sweep.set_defaults(func=_cmd_alloc_sweep)

    # --- simulation service ---------------------------------------------------

    svc_common = argparse.ArgumentParser(add_help=False)
    svc_common.add_argument(
        "--socket", default=None, metavar="ADDR",
        help="daemon address: a Unix socket path or tcp:HOST:PORT "
        "(default $REPRO_SERVICE_SOCKET, else <cache-dir>/service.sock)",
    )
    svc_common.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="client-side response timeout in seconds (default 600)",
    )

    serve = sub.add_parser(
        "serve", help="run the simulation daemon (async job service)"
    )
    serve.add_argument(
        "--socket", default=None, metavar="ADDR",
        help="listen address: Unix socket path or tcp:HOST:PORT",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes in the pool (default 2)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="max queued jobs before submissions are rejected (default 64)",
    )
    serve.add_argument(
        "--max-per-client", type=int, default=16, metavar="N",
        help="max queued+running jobs per client (default 16)",
    )
    serve.add_argument(
        "--sched", choices=("fifo", "spjf", "fair"), default="fifo",
        help="scheduling policy: arrival order, shortest-predicted-job-"
        "first (cached cycle counts), or per-client fair share",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=300.0, metavar="S",
        help="per-job wall-clock deadline in seconds; 0 disables "
        "(default 300)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries after a worker crash or timeout (default 2)",
    )
    serve.add_argument(
        "--retry-backoff", type=float, default=0.25, metavar="S",
        help="base retry backoff, doubled per attempt (default 0.25s)",
    )
    serve.add_argument(
        "--recycle-after", type=int, default=64, metavar="N",
        help="recycle a worker after N jobs; 0 disables (default 64)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result-cache directory for dedup/coalescing",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache (disables dedup)",
    )
    serve.add_argument(
        "--runner", default=None, metavar="MOD:FUNC",
        help="job runner as package.module:callable (default: the cached "
        "simulation runner; test/bench harnesses inject stubs here)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a job to a running daemon and stream its result",
    )
    submit_sub = submit.add_subparsers(dest="kind", required=True)
    submit_pair = submit_sub.add_parser(
        "pair", help="a Table 3 co-run pair", parents=[svc_common]
    )
    submit_pair.add_argument("suite", choices=("spec", "opencv"))
    submit_pair.add_argument("mem", type=int)
    submit_pair.add_argument("comp", type=int)
    submit_motivate = submit_sub.add_parser(
        "motivate", help="the §2 motivating pair", parents=[svc_common]
    )
    for sp, default_scale in ((submit_pair, 0.35), (submit_motivate, 0.5)):
        sp.add_argument(
            "--policy", choices=sorted(POLICY_KEYS + ("cts",)), default="occamy"
        )
        sp.add_argument("--scale", type=float, default=default_scale)
        sp.add_argument("--client", default="cli", help="client name for "
                        "fair-share scheduling and per-client quotas")
        sp.add_argument("--no-wait", action="store_true",
                        help="return after the queued acknowledgement")
        sp.add_argument("--json", action="store_true",
                        help="print the final event as JSON")
        sp.set_defaults(func=_cmd_submit)

    svc_status = sub.add_parser(
        "svc-status",
        help="query (and optionally drain/stop) one daemon, or aggregate "
        "a whole fleet with repeated --socket",
    )
    svc_status.add_argument(
        "--socket", action="append", default=None, metavar="ADDR",
        help="daemon address (Unix socket path or tcp:HOST:PORT); repeat "
        "for a fleet-wide aggregate view (default $REPRO_SERVICE_SOCKET, "
        "else <cache-dir>/service.sock)",
    )
    svc_status.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="client-side response timeout in seconds (default 600)",
    )
    svc_status.add_argument(
        "--drain", action="store_true",
        help="stop admitting work and wait for in-flight jobs to finish",
    )
    svc_status.add_argument(
        "--shutdown", action="store_true",
        help="stop the daemon(s) after reporting status",
    )
    svc_status.add_argument("--json", action="store_true")
    svc_status.set_defaults(func=_cmd_svc_status)

    # --- fleet: HTTP gateway + N daemons --------------------------------------

    fleet = sub.add_parser(
        "fleet",
        help="run or control an HTTP gateway fronting N simulation daemons",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_op", required=True)

    fleet_serve = fleet_sub.add_parser(
        "serve", help="spawn N daemons and serve the HTTP gateway (foreground)"
    )
    fleet_serve.add_argument(
        "-n", "--count", type=int, default=2, metavar="N",
        help="daemon shards to spawn (default 2)",
    )
    fleet_serve.add_argument(
        "--http", dest="http_bind", default="127.0.0.1:8765", metavar="HOST:PORT",
        help="gateway listen address (default 127.0.0.1:8765)",
    )
    fleet_serve.add_argument(
        "--routing", choices=("hash", "least-loaded", "steal"), default="hash",
        help="shard routing policy: consistent-hash (warm-shard affinity), "
        "least-loaded, or hash with work-stealing above --steal-threshold",
    )
    fleet_serve.add_argument(
        "--steal-threshold", type=int, default=4, metavar="N",
        help="queue-depth gap before 'steal' overrides the hash home "
        "(default 4)",
    )
    fleet_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes per daemon (default 2)",
    )
    fleet_serve.add_argument(
        "--sched", choices=("fifo", "spjf", "fair"), default="fifo",
        help="per-daemon scheduling policy (default fifo)",
    )
    fleet_serve.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="per-daemon queue depth (default 64)",
    )
    fleet_serve.add_argument(
        "--max-per-client", type=int, default=16, metavar="N",
        help="per-daemon per-client quota (default 16)",
    )
    fleet_serve.add_argument(
        "--job-timeout", type=float, default=300.0, metavar="S",
        help="per-job wall-clock deadline in seconds (default 300)",
    )
    fleet_serve.add_argument(
        "--base-dir", default=None, metavar="DIR",
        help="directory for shard sockets and logs "
        "(default <cache-dir>/fleet)",
    )
    fleet_serve.add_argument(
        "--runner", default=None, metavar="MOD:FUNC",
        help="job runner forwarded to every daemon (see 'serve --runner')",
    )
    fleet_serve.set_defaults(func=_cmd_fleet_serve)

    fleet_client = argparse.ArgumentParser(add_help=False)
    fleet_client.add_argument(
        "--http", default=None, metavar="URL",
        help=f"gateway URL (default ${FLEET_HTTP_ENV}, "
        f"else {DEFAULT_FLEET_HTTP})",
    )
    fleet_client.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="HTTP response timeout in seconds (default 600)",
    )

    fleet_status = fleet_sub.add_parser(
        "status", help="aggregate fleet status via the gateway",
        parents=[fleet_client],
    )
    fleet_status.add_argument("--json", action="store_true")
    fleet_status.set_defaults(func=_cmd_fleet_status)

    fleet_drain = fleet_sub.add_parser(
        "drain", help="quiesce every shard (finish queued + running work)",
        parents=[fleet_client],
    )
    fleet_drain.set_defaults(func=_cmd_fleet_drain)

    fleet_scale = fleet_sub.add_parser(
        "scale", help="grow or shrink the fleet to N shards",
        parents=[fleet_client],
    )
    fleet_scale.add_argument("n", type=int, help="target shard count")
    fleet_scale.set_defaults(func=_cmd_fleet_scale)

    fleet_stop = fleet_sub.add_parser(
        "stop", help="shut down every shard and the gateway",
        parents=[fleet_client],
    )
    fleet_stop.add_argument(
        "--drain", action="store_true",
        help="finish in-flight work before stopping",
    )
    fleet_stop.set_defaults(func=_cmd_fleet_stop)

    cache = sub.add_parser(
        "cache", help="inspect / prune the persistent result cache"
    )
    # dest differs from the runtime --cache-dir so main() never pins the
    # process-wide default cache for a pure inspection command
    cache.add_argument(
        "--cache-dir", dest="inspect_cache_dir", default=None, metavar="DIR",
        help="cache directory (default $REPRO_CACHE_DIR, else ~/.cache/repro)",
    )
    cache_sub = cache.add_subparsers(dest="cache_op", required=True)
    cache_stats = cache_sub.add_parser("stats", help="entry count and bytes")
    cache_stats.add_argument("--verbose", action="store_true",
                             help="also list individual entries")
    cache_prune = cache_sub.add_parser(
        "prune", help="evict oldest entries until within bounds"
    )
    cache_prune.add_argument("--max-bytes", type=int, default=None, metavar="N")
    cache_prune.add_argument("--max-entries", type=int, default=None, metavar="N")
    cache_sub.add_parser("clear", help="delete every cached entry")
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "audit", False):
        # Set the env knob (not just Machine(audit=True)) so --jobs worker
        # processes and library code constructing Machines inherit it.
        os.environ["REPRO_AUDIT"] = "1"
    if getattr(args, "cache_dir", None) or getattr(args, "no_cache", False):
        from repro.analysis import result_cache

        result_cache.configure(
            cache_dir=getattr(args, "cache_dir", None),
            disabled=getattr(args, "no_cache", False),
        )
    from repro.common.errors import ConfigurationError

    try:
        code = args.func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "profile", False):
        from repro.core.replay import GLOBAL_PROFILE

        print()
        print(GLOBAL_PROFILE.report())
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
