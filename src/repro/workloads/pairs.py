"""Co-running workload pairs and four-core groups (paper §7.1/§7.6).

The 25 two-core pairs come from Fig. 10's x-axis: 16 SPEC pairs and 9
OpenCV pairs, written ``<mem>+<comp>`` with the memory-intensive workload
on Core0 and the compute-intensive one on Core1.  The four four-core
groups come from Fig. 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.common.config import experiment_config
from repro.compiler.ir import Kernel
from repro.compiler.pipeline import CompileOptions, build_image, compile_kernel
from repro.core.machine import Job
from repro.isa.program import Program
from repro.workloads.opencv import opencv_workload
from repro.workloads.spec import spec_workload


@dataclass(frozen=True)
class CoRunPair:
    """One two-core co-run: workload ids within a suite."""

    suite: str  # "spec" | "opencv"
    core0: int  # memory-intensive side
    core1: int  # compute-intensive side

    @property
    def label(self) -> str:
        return f"{self.core0}+{self.core1}"

    def __str__(self) -> str:
        return f"{self.suite}:{self.label}"


#: Fig. 10 x-axis, SPEC section (memory on Core0, compute on Core1).
SPEC_PAIRS: Tuple[CoRunPair, ...] = tuple(
    CoRunPair("spec", a, b)
    for a, b in (
        (1, 13), (2, 14), (3, 4), (5, 15), (6, 16), (8, 17), (7, 18),
        (20, 9), (21, 17), (20, 17), (10, 16), (11, 14), (22, 15),
        (4, 14), (9, 13), (12, 19),
    )
)

#: Fig. 10 x-axis, OpenCV section.
OPENCV_PAIRS: Tuple[CoRunPair, ...] = tuple(
    CoRunPair("opencv", a, b)
    for a, b in (
        (6, 1), (2, 1), (7, 3), (8, 3), (9, 4), (10, 4), (11, 5),
        (12, 5), (11, 1),
    )
)

#: Fig. 16's four-core groups (SPEC workload ids for Core0..Core3).
FOUR_CORE_GROUPS: Tuple[Tuple[int, int, int, int], ...] = (
    (15, 6, 15, 16),
    (21, 20, 17, 17),
    (10, 22, 16, 15),
    (7, 19, 20, 14),
)


def all_pairs() -> List[CoRunPair]:
    """All 25 evaluated pairs, in the paper's plotting order."""
    return list(SPEC_PAIRS) + list(OPENCV_PAIRS)


def dedup_unordered(keys: Sequence) -> List[Tuple]:
    """Distinct *unordered* co-run pairs formable from a key multiset.

    Placement makes pair order irrelevant, so (A,B) and (B,A) collapse to
    one sorted entry; a self-pair (A,A) appears only when the multiset
    actually holds two A's.  Keys may be workload ids or thread keys —
    anything sortable.  Output is sorted and duplicate-free.
    """
    counts: dict = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    distinct = sorted(counts)
    pairs: List[Tuple] = []
    for i, a in enumerate(distinct):
        if counts[a] >= 2:
            pairs.append((a, a))
        for b in distinct[i + 1 :]:
            pairs.append((a, b))
    return pairs


def corun_pair_set(group: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """The deduplicated unordered pair-set a workload group can form.

    This is the candidate set the allocation layer scores: every complex
    any placement of ``group`` could create, each symmetric pair counted
    once.
    """
    return tuple(dedup_unordered(list(group)))


@lru_cache(maxsize=None)
def _compiled(suite: str, workload_id: int, scale: float) -> Tuple[Kernel, Program]:
    if suite == "spec":
        kernel = spec_workload(workload_id, scale=scale)
    elif suite == "opencv":
        kernel = opencv_workload(workload_id, scale=scale)
    else:
        raise KeyError(f"unknown suite {suite!r}")
    options = CompileOptions(memory=experiment_config().memory)
    return kernel, compile_kernel(kernel, options)


def workload_job(
    suite: str, workload_id: int, core_id: int, scale: float = 1.0
) -> Job:
    """Compile (cached) and instantiate one workload for ``core_id``."""
    kernel, program = _compiled(suite, workload_id, scale)
    return Job(program=program, image=build_image(kernel, core_id=core_id))


def jobs_for_pair(pair: CoRunPair, scale: float = 1.0) -> List[Optional[Job]]:
    """Jobs for the two cores of ``pair`` (fresh images each call)."""
    return [
        workload_job(pair.suite, pair.core0, core_id=0, scale=scale),
        workload_job(pair.suite, pair.core1, core_id=1, scale=scale),
    ]


def jobs_for_group(
    group: Sequence[int], scale: float = 1.0, suite: str = "spec"
) -> List[Optional[Job]]:
    """Jobs for a four-core group (Fig. 16)."""
    return [
        workload_job(suite, workload_id, core_id=core, scale=scale)
        for core, workload_id in enumerate(group)
    ]
