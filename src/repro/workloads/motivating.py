"""The §2 motivating example (Fig. 2): 654.rom_s + 621.wrf_s.

``WL#0`` is two memory-intensive loops: the rhs3d i-loop (low intensity,
saturates at 8 lanes under the roofline) followed by the rho_eos i-loop
(moderate intensity, saturates at 12 lanes).  ``WL#1`` is the wsm5 k-loop:
a compute-intensive stencil with data reuse that benefits all the way to
32 lanes.  Under the elastic policy the lane plans replay the paper's
Fig. 8 schedule: 8 -> 12 lanes for WL#0 and 24 -> 20 -> 32 for WL#1.
"""

from __future__ import annotations

from typing import Tuple

from repro.compiler.ir import Kernel
from repro.workloads.synth import (
    RESIDENT_TRIP,
    STREAMING_TRIP,
    solve_counts,
    synth_loop,
)


def motivating_wl0(scale: float = 1.0) -> Kernel:
    """WL#0: 654.rom_s — rhs3d (phase 1) then rho_eos (phase 2)."""
    repeats = max(1, round(1 * scale))
    phase1 = synth_loop(
        "rom_rhs3d",
        solve_counts(0.083, min_footprint=3),
        trip_count=STREAMING_TRIP,
        repeats=repeats,
    )
    phase2 = synth_loop(
        "rom_rho_eos",
        solve_counts(0.375, min_footprint=3),
        trip_count=STREAMING_TRIP,
        repeats=repeats,
    )
    return Kernel(
        name="motivating.WL0",
        array_length=STREAMING_TRIP + 2,
        loops=(phase1, phase2),
    )


def motivating_wl1(scale: float = 1.0) -> Kernel:
    """WL#1: 621.wrf_s — the wsm5 k-loop (compute-intensive stencil)."""
    loop = synth_loop(
        "wrf_wsm5",
        solve_counts(1.0, oi_issue=0.6),
        trip_count=RESIDENT_TRIP,
        repeats=max(1, round(350 * scale)),
    )
    return Kernel(
        name="motivating.WL1",
        array_length=RESIDENT_TRIP + 2,
        loops=(loop,),
    )


def motivating_pair(scale: float = 1.0) -> Tuple[Kernel, Kernel]:
    """(WL#0, WL#1) — run WL#0 on Core0 and WL#1 on Core1."""
    return motivating_wl0(scale), motivating_wl1(scale)
