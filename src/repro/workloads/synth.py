"""Synthetic loop construction calibrated to a target operational intensity.

SPEC CPU2017 sources cannot be reproduced from the paper, but the sharing
policies only observe a phase through its instruction mix, operational
intensity and residency class.  ``solve_counts`` finds an instruction mix
``(comp, reads, extra stencil loads, stores)`` whose Eq. 5 analysis matches
the paper's Table 3 value, and ``synth_loop`` emits a loop body with that
exact mix (validated by the workload tests against ``analyze_loop``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import CompilationError
from repro.compiler.ir import Assign, BinOp, Const, Expr, Load, Loop, Statement

#: Keep comp + loads well under the 32 architectural vector registers.
MAX_BODY_NODES = 27

#: Default element trip counts per residency class (see experiment_config):
#: streaming footprints exceed the scaled L2; resident footprints fit the
#: scaled Vec Cache.
STREAMING_TRIP = 16384
RESIDENT_TRIP = 1024

#: Phases with oi_mem below this are treated as memory-intensive.
STREAMING_OI_THRESHOLD = 0.4

#: Target duration (cycles at 16 lanes, scale 1.0) of a compute phase —
#: compute-intensive co-runners outlive their memory-intensive partners,
#: like the paper's motivating example (WL#1 runs ~2.7x longer than WL#0).
COMPUTE_TARGET_CYCLES = 30000


def resident_repeats(comp_insts: int, trip_count: int, scale: float) -> int:
    """Repeat count giving a resident phase its target duration."""
    iters_per_pass = max(1, trip_count // 64)  # 64 elements at 16 lanes
    cycles_per_pass = iters_per_pass * max(comp_insts / 2.0, 2.0)
    return max(1, round(scale * COMPUTE_TARGET_CYCLES / cycles_per_pass))


@dataclass(frozen=True)
class Counts:
    """A loop-body instruction mix."""

    comp: int  # vector compute instructions per iteration
    reads: int  # distinct arrays loaded
    extra_loads: int  # additional shifted loads of already-read arrays
    stores: int  # arrays stored

    def __post_init__(self) -> None:
        if self.comp < 1 or self.reads < 1 or self.stores < 1 or self.extra_loads < 0:
            raise CompilationError("counts must be positive (stores >= 1)")
        if self.extra_loads > self.reads:
            raise CompilationError("at most one extra shifted load per array")
        if self.comp < self.loads - 1:
            raise CompilationError(
                "need at least loads-1 compute nodes to combine operands"
            )
        if self.comp + self.loads > MAX_BODY_NODES:
            raise CompilationError("body exceeds the vector register budget")

    @property
    def loads(self) -> int:
        return self.reads + self.extra_loads

    @property
    def footprint_arrays(self) -> int:
        return self.reads + self.stores

    @property
    def oi_mem(self) -> float:
        return self.comp / (4.0 * self.footprint_arrays)

    @property
    def oi_issue(self) -> float:
        return self.comp / (4.0 * (self.loads + self.stores))


def solve_counts(
    oi_mem: float,
    oi_issue: Optional[float] = None,
    tolerance: float = 0.12,
    min_footprint: int = 1,
) -> Counts:
    """Find the instruction mix best matching the target intensities.

    ``oi_issue`` defaults to ``oi_mem`` (no data reuse, §6.3).  Raises when
    no mix within ``tolerance`` relative error exists under the register
    budget.
    """
    if oi_mem <= 0:
        raise CompilationError("target oi_mem must be positive")
    target_issue = oi_issue if oi_issue is not None else oi_mem
    best: Optional[Tuple[float, Counts]] = None
    for reads in range(1, 8):
        for stores in range(1, 4):
            if reads + stores < min_footprint:
                continue
            for extra in range(0, reads + 1):
                comp_exact = oi_mem * 4.0 * (reads + stores)
                for comp in {int(comp_exact), int(comp_exact) + 1}:
                    if comp < max(1, reads + extra - 1):
                        continue
                    if comp + reads + extra > MAX_BODY_NODES:
                        continue
                    candidate = Counts(comp, reads, extra, stores)
                    mem_err = abs(candidate.oi_mem - oi_mem) / oi_mem
                    issue_err = abs(candidate.oi_issue - target_issue) / max(
                        target_issue, 1e-9
                    )
                    err = mem_err + issue_err
                    if best is None or err < best[0]:
                        best = (err, candidate, max(mem_err, issue_err))
    # Gate each intensity separately: at very low OI the achievable
    # comp/footprint ratios are sparse, so both errors peak together in
    # the gaps and a summed bound falsely rejects mixes that are
    # individually well within tolerance.
    if best is None or best[2] > 2 * tolerance:
        raise CompilationError(
            f"no instruction mix within tolerance for oi_mem={oi_mem}, "
            f"oi_issue={target_issue}"
        )
    return best[1]


def synth_loop(
    name: str,
    counts: Counts,
    trip_count: int,
    repeats: int = 1,
) -> Loop:
    """Emit a loop with exactly ``counts`` instructions per iteration.

    The body combines all loads in a balanced tree (good ILP), pads with
    per-store chains of uniquely-constanted operations (so CSE cannot
    collapse them), and stores ``counts.stores`` distinct results.
    """
    operands: List[Expr] = [Load(f"{name}_in{i}") for i in range(counts.reads)]
    operands += [
        Load(f"{name}_in{i}", shift=1) for i in range(counts.extra_loads)
    ]

    # Balanced combine tree: len(operands) - 1 compute nodes.
    ops_cycle = ("add", "max", "min")
    level = 0
    while len(operands) > 1:
        combined: List[Expr] = []
        op = ops_cycle[level % len(ops_cycle)]
        for index in range(0, len(operands) - 1, 2):
            combined.append(BinOp(op, operands[index], operands[index + 1]))
        if len(operands) % 2:
            combined.append(operands[-1])
        operands = combined
        level += 1
    root = operands[0]

    budget = counts.comp - (counts.loads - 1)
    per_store = [budget // counts.stores] * counts.stores
    for index in range(budget % counts.stores):
        per_store[index] += 1

    body: List[Statement] = []
    for store_index in range(counts.stores):
        value = root
        for link in range(per_store[store_index]):
            constant = 1.0 + 0.001 * (store_index * 37 + link + 1)
            op = "mul" if link % 2 == 0 else "add"
            value = BinOp(op, value, Const(round(constant, 6)))
        body.append(Assign(f"{name}_out{store_index}", value))
    return Loop(name=name, trip_count=trip_count, body=tuple(body), repeats=repeats)


def synth_phase(
    name: str,
    oi_mem: float,
    oi_issue: Optional[float] = None,
    streaming: Optional[bool] = None,
    scale: float = 1.0,
) -> Loop:
    """A named phase calibrated to the paper's Table 3 intensity.

    ``streaming`` defaults by intensity class; ``scale`` multiplies the
    repeat count (for quick test runs versus full benchmark runs).
    """
    if streaming is None:
        streaming = oi_mem < STREAMING_OI_THRESHOLD
    # Streaming phases need a footprint larger than the scaled L2 (three
    # arrays at the streaming trip count), so they really hit DRAM.
    counts = solve_counts(oi_mem, oi_issue, min_footprint=3 if streaming else 1)
    if streaming:
        trip = STREAMING_TRIP
        repeats = max(1, round(1 * scale))
    else:
        trip = RESIDENT_TRIP
        repeats = resident_repeats(counts.comp, trip, scale)
    return synth_loop(name, counts, trip_count=trip, repeats=repeats)
