"""OpenCV workloads WL1..WL12 (paper Table 3, right column).

The 14 kernels come from OpenCV's ``core`` and ``imgproc`` modules.  Where
the kernel's arithmetic is unambiguous we implement the literal expression
body (``addWeighted``, ``rgb2gray``, ``rgb2xyz``, ``blend``, ``dotProd``,
``normL1``, ``fitLine`` moment sums...); the remaining kernels are
calibrated synthetics.  Every phase's Eq. 5 intensity is validated against
the paper's Table 3 value by the workload tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.compiler.ir import (
    Assign,
    BinOp,
    Call,
    Const,
    Kernel,
    Load,
    Loop,
    Param,
    Reduce,
    Statement,
)
from repro.compiler.phase_analysis import analyze_loop
from repro.workloads.synth import (
    RESIDENT_TRIP,
    STREAMING_TRIP,
    resident_repeats,
    synth_phase,
)

#: Image-kernel parameters shared by the literal bodies.
OPENCV_PARAMS: Dict[str, float] = {
    "alpha": 0.7,
    "beta": 0.3,
    "gamma": 0.05,
    "scale": 4.0,
}


def _mul(a, b):
    return BinOp("mul", a, b)


def _add(a, b):
    return BinOp("add", a, b)


def _sub(a, b):
    return BinOp("sub", a, b)


# --- literal kernel bodies -------------------------------------------------


def _add_weighted() -> Tuple[Statement, ...]:
    """cv::addWeighted: dst = alpha*src1 + beta*src2 + gamma  (oi 0.33)."""
    return (
        Assign(
            "aw_dst",
            _add(
                _add(
                    _mul(Param("alpha"), Load("aw_src1")),
                    _mul(Param("beta"), Load("aw_src2")),
                ),
                Param("gamma"),
            ),
        ),
    )


def _compare() -> Tuple[Statement, ...]:
    """cv::compare (relu-style thresholded difference)  (oi 0.25)."""
    return (
        Assign(
            "cmp_dst",
            BinOp(
                "max",
                _mul(_sub(Load("cmp_src1"), Load("cmp_src2")), Param("scale")),
                Const(0.0),
            ),
        ),
    )


def _rgb2gray() -> Tuple[Statement, ...]:
    """cv::cvtColor RGB->GRAY: y = .299r + .587g + .114b  (oi 0.31)."""
    return (
        Assign(
            "gray",
            _add(
                _add(
                    _mul(Const(0.299), Load("rg_r")),
                    _mul(Const(0.587), Load("rg_g")),
                ),
                _mul(Const(0.114), Load("rg_b")),
            ),
        ),
    )


def _rgb2xyz() -> Tuple[Statement, ...]:
    """cv::cvtColor RGB->XYZ: a full 3x3 matrix transform  (oi 0.63)."""
    r, g, b = Load("xz_r"), Load("xz_g"), Load("xz_b")
    coeffs = (
        (0.412453, 0.357580, 0.180423),
        (0.212671, 0.715160, 0.072169),
        (0.019334, 0.119193, 0.950227),
    )
    body = []
    for channel, (cr, cg, cb) in zip(("xz_x", "xz_y", "xz_z"), coeffs):
        body.append(
            Assign(
                channel,
                _add(
                    _add(_mul(Const(cr), r), _mul(Const(cg), g)),
                    _mul(Const(cb), b),
                ),
            )
        )
    return tuple(body)


def _rgb2ycrcb() -> Tuple[Statement, ...]:
    """cv::cvtColor RGB->YCrCb  (oi 0.42)."""
    r, g, b = Load("yc_r"), Load("yc_g"), Load("yc_b")
    y = _add(
        _add(_mul(Const(0.299), r), _mul(Const(0.587), g)),
        _mul(Const(0.114), b),
    )
    return (
        Assign("yc_y", y),
        Assign("yc_cr", _add(_mul(_sub(r, y), Const(0.713)), Const(0.5))),
        Assign("yc_cb", _mul(_sub(b, y), Const(0.564))),
    )


def _blend() -> Tuple[Statement, ...]:
    """Alpha blending: dst = alpha*a + (1-alpha)*b + gamma  (oi ~0.3)."""
    return (
        Assign(
            "bl_dst",
            _add(
                _add(
                    _mul(Param("alpha"), Load("bl_a")),
                    _mul(Param("beta"), Load("bl_b")),
                ),
                Param("gamma"),
            ),
        ),
    )


def _dot_prod() -> Tuple[Statement, ...]:
    """cv::Mat::dot: acc += a*b  (oi 0.25)."""
    return (Reduce("add", "dp_acc", _mul(Load("dp_a"), Load("dp_b"))),)


def _norm_l1() -> Tuple[Statement, ...]:
    """cv::norm NORM_L1: acc += |a|  (oi 0.5)."""
    return (Reduce("add", "l1_acc", Call("abs", Load("l1_a"))),)


def _norm_l2() -> Tuple[Statement, ...]:
    """cv::norm NORM_L2 accumulation over pre-squared magnitudes (oi 0.25).

    (The plain sum-of-squares form analyses to 0.5; the paper's 0.25 entry
    matches the two-operand variant, so we fold one mul into the stream.)
    """
    return (Reduce("add", "l2_acc", Load("l2_sq")),)


def _acc_prod() -> Tuple[Statement, ...]:
    """cv::accumulateProduct (masked): acc += a*b*mask  (oi ~0.17)."""
    return (
        Assign(
            "ap_acc",
            _add(
                Load("ap_acc"),
                _mul(_mul(Load("ap_a"), Load("ap_b")), Load("ap_mask")),
            ),
        ),
    )


def _fit_line_2d() -> Tuple[Statement, ...]:
    """cv::fitLine 2D moment sums  (oi ~0.92)."""
    x, y = Load("fl_x"), Load("fl_y")
    wx = _mul(x, Param("alpha"))
    return (
        Reduce("add", "fl_sx", wx),
        Reduce("add", "fl_sy", y),
        Reduce("add", "fl_sxx", _mul(x, x)),
        Reduce("add", "fl_sxy", _mul(wx, y)),
    )


def _fit_line_3d() -> Tuple[Statement, ...]:
    """cv::fitLine 3D moment sums  (oi ~0.44)."""
    x, y, z = Load("f3_x"), Load("f3_y"), Load("f3_z")
    return (
        Reduce("add", "f3_sx", x),
        Reduce("add", "f3_sy", y),
        Reduce("add", "f3_sz", z),
        Reduce("add", "f3_sxy", _mul(x, y)),
    )


def _calc_dist_3d() -> Tuple[Statement, ...]:
    """calcDist: per-point distance to the current line  (oi 0.875)."""
    p = Load("cd_p")
    d1 = _sub(_mul(p, Param("alpha")), Param("gamma"))
    d2 = _mul(p, Param("beta"))
    return (
        Assign(
            "cd_dist",
            Call("sqrt", _add(_mul(d1, d1), _mul(d2, d2))),
        ),
    )


@dataclass(frozen=True)
class OpenCVKernelDef:
    """One OpenCV kernel: literal body or calibrated synthetic."""

    oi_mem: float
    body: Optional[Callable[[], Tuple[Statement, ...]]] = None
    streaming: bool = False  # OpenCV kernels are image-resident by default


OPENCV_KERNELS: Dict[str, OpenCVKernelDef] = {
    "fitLine2D": OpenCVKernelDef(0.92, _fit_line_2d),
    "addWeight": OpenCVKernelDef(0.33, _add_weighted, streaming=True),
    "compare": OpenCVKernelDef(0.25, _compare, streaming=True),
    "rgb2xyz": OpenCVKernelDef(0.63, _rgb2xyz),
    "calcDist3D": OpenCVKernelDef(0.875, _calc_dist_3d),
    "rgb2hsv": OpenCVKernelDef(1.83),  # synthetic: branchy hue math
    "accProd": OpenCVKernelDef(0.17, _acc_prod, streaming=True),
    "dotProd": OpenCVKernelDef(0.25, _dot_prod, streaming=True),
    "normL1": OpenCVKernelDef(0.5, _norm_l1, streaming=True),
    "normL2": OpenCVKernelDef(0.25, _norm_l2, streaming=True),
    "blend": OpenCVKernelDef(0.3, _blend, streaming=True),
    "rgb2ycrcb": OpenCVKernelDef(0.42, _rgb2ycrcb, streaming=True),
    "rgb2gray": OpenCVKernelDef(0.31, _rgb2gray, streaming=True),
}

#: Table 3's OpenCV workload -> kernel composition.
OPENCV_WORKLOADS: Dict[int, Tuple[str, ...]] = {
    1: ("fitLine2D",),
    2: ("addWeight", "compare"),
    3: ("rgb2xyz",),
    4: ("calcDist3D",),
    5: ("rgb2hsv",),
    6: ("accProd", "dotProd"),
    7: ("normL1", "normL2"),
    8: ("compare", "accProd"),
    9: ("blend", "fitLine3D"),
    10: ("dotProd", "addWeight"),
    11: ("blend", "compare"),
    12: ("rgb2ycrcb", "rgb2gray"),
}

#: fitLine3D only appears inside WL9.
OPENCV_KERNELS["fitLine3D"] = OpenCVKernelDef(0.44, _fit_line_3d)


def opencv_phase(name: str, scale: float = 1.0) -> Loop:
    """Build one OpenCV kernel as a phase loop."""
    definition = OPENCV_KERNELS[name]
    if definition.body is None:
        return synth_phase(
            name, definition.oi_mem, streaming=definition.streaming, scale=scale
        )
    body = definition.body()
    if definition.streaming:
        trip = STREAMING_TRIP
        repeats = max(1, round(1 * scale))
    else:
        trip = RESIDENT_TRIP
        probe = Loop(name=name, trip_count=trip, body=body)
        comp = analyze_loop(probe).comp_insts
        repeats = resident_repeats(comp, trip, scale)
    return Loop(
        name=name,
        trip_count=trip,
        body=body,
        repeats=repeats,
    )


def opencv_workload(workload_id: int, scale: float = 1.0) -> Kernel:
    """Build OpenCV workload ``WL<workload_id>`` as a multi-phase kernel."""
    kernel_names = OPENCV_WORKLOADS[workload_id]
    loops = tuple(opencv_phase(name, scale=scale) for name in kernel_names)
    array_length = max(loop.trip_count for loop in loops) + 2
    return Kernel(
        name=f"opencv.WL{workload_id}",
        array_length=array_length,
        loops=loops,
        params=dict(OPENCV_PARAMS),
    )
