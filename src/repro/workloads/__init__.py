"""The evaluated workloads (paper §7.1, Table 3).

The paper extracts 22 SPEC CPU2017 workloads (from 28 hot vectorized
loops) and 12 OpenCV workloads (from 14 kernels), pairs them into 25
two-core co-runs plus four four-core groups.  We rebuild each *phase* so
that our Eq. 5 analysis reproduces the operational intensity the paper's
Table 3 reports — with literal expression bodies where the paper prints
the source (wsm5-style stencils, OpenCV colour/arithmetic kernels) and
synthesized loop bodies elsewhere (SPEC sources are not reproducible from
the paper).  Memory-intensive phases stream DRAM-resident arrays;
compute-intensive phases iterate over Vec-Cache-resident arrays.
"""

from repro.workloads.motivating import motivating_pair
from repro.workloads.opencv import OPENCV_WORKLOADS, opencv_workload
from repro.workloads.pairs import (
    FOUR_CORE_GROUPS,
    OPENCV_PAIRS,
    SPEC_PAIRS,
    CoRunPair,
    all_pairs,
    jobs_for_group,
    jobs_for_pair,
)
from repro.workloads.spec import SPEC_PHASES, SPEC_WORKLOADS, spec_workload
from repro.workloads.synth import Counts, solve_counts, synth_loop, synth_phase

__all__ = [
    "CoRunPair",
    "Counts",
    "FOUR_CORE_GROUPS",
    "OPENCV_PAIRS",
    "OPENCV_WORKLOADS",
    "SPEC_PAIRS",
    "SPEC_PHASES",
    "SPEC_WORKLOADS",
    "all_pairs",
    "jobs_for_group",
    "jobs_for_pair",
    "motivating_pair",
    "opencv_workload",
    "solve_counts",
    "spec_workload",
    "synth_loop",
    "synth_phase",
]
