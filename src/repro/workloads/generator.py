"""Random workload generation for fuzzing the sharing policies.

``random_workload`` draws a multi-phase kernel with realistic operational
intensities (the Table 3 range) and residency classes; ``random_pair``
draws a `<memory, compute>` pair.  Deterministic given the seed — used by
the fuzz tests to check the paper's invariants (correct results, bounded
core0 impact, lane accounting) on workloads nobody hand-picked.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.compiler.ir import Kernel, Loop
from repro.workloads.synth import (
    RESIDENT_TRIP,
    STREAMING_TRIP,
    resident_repeats,
    solve_counts,
    synth_loop,
)

#: Table 3's observed intensity ranges per class.
MEMORY_OI_RANGE = (0.06, 0.32)
COMPUTE_OI_RANGE = (0.45, 1.9)


def random_phase(
    rng: random.Random, name: str, streaming: bool, scale: float = 0.3
) -> Loop:
    """One random phase of the requested residency class."""
    if streaming:
        oi = rng.uniform(*MEMORY_OI_RANGE)
        counts = solve_counts(round(oi, 3), min_footprint=3)
        return synth_loop(name, counts, trip_count=STREAMING_TRIP, repeats=1)
    oi = rng.uniform(*COMPUTE_OI_RANGE)
    counts = solve_counts(round(oi, 3))
    repeats = resident_repeats(counts.comp, RESIDENT_TRIP, scale)
    return synth_loop(name, counts, trip_count=RESIDENT_TRIP, repeats=repeats)


def random_workload(
    seed: int, streaming: bool, phases: int = None, scale: float = 0.3
) -> Kernel:
    """A random single-class workload with 1-3 phases."""
    rng = random.Random(seed)
    count = phases if phases is not None else rng.randint(1, 3)
    loops = tuple(
        random_phase(rng, f"fuzz{seed}_{index}", streaming, scale)
        for index in range(count)
    )
    array_length = max(loop.trip_count for loop in loops) + 2
    return Kernel(
        name=f"fuzz.{'mem' if streaming else 'comp'}{seed}",
        array_length=array_length,
        loops=loops,
    )


def random_pair(seed: int, scale: float = 0.3) -> Tuple[Kernel, Kernel]:
    """A random ``<memory, compute>`` co-running pair."""
    return (
        random_workload(seed * 2 + 1, streaming=True, scale=scale),
        random_workload(seed * 2 + 2, streaming=False, scale=scale),
    )
