"""SPEC CPU2017 workloads WL1..WL22 (paper Table 3, left columns).

Each phase is synthesized to match the operational intensity the paper
reports for that loop (see :mod:`repro.workloads.synth`).  Two table
entries are internally inconsistent in the paper (``rho_eos2`` appears as
0.25 in WL19 but 0.08 in WL22; ``sff5`` as 0.21 in WL20 but 0.16 in WL21);
we keep both values as distinct phase variants, suffixed ``_b``.

``rho_eos2`` carries data reuse: the paper's Case 4 (Table 5) gives it
``oi_issue = 0.17`` and ``oi_mem = 0.25``, which we reproduce with stencil
loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.compiler.ir import Kernel, Loop
from repro.workloads.synth import synth_phase


@dataclass(frozen=True)
class PhaseDef:
    """One Table 3 phase: name and operational intensity."""

    oi_mem: float
    oi_issue: Optional[float] = None  # None => no data reuse (== oi_mem)
    streaming: Optional[bool] = None  # None => decide by intensity


#: All SPEC phases appearing in Table 3 with their reported oi_mem.
SPEC_PHASES: Dict[str, PhaseDef] = {
    "select_atoms1": PhaseDef(0.25),
    "select_atoms2": PhaseDef(0.25),
    "select_atoms3": PhaseDef(0.25),
    "select_atoms4": PhaseDef(0.083),
    "select_atoms5": PhaseDef(0.75),
    "step3d_uv1": PhaseDef(0.11),
    "step3d_uv2": PhaseDef(0.09),
    "step3d_uv3": PhaseDef(0.13),
    "step3d_uv4": PhaseDef(0.13),
    "rhs3d1": PhaseDef(0.13),
    "rhs3d5": PhaseDef(0.32),
    "rhs3d7": PhaseDef(0.17),
    "rho_eos1": PhaseDef(0.09),
    # Case 4 / Table 5: data reuse makes issue and memory OI diverge.
    "rho_eos2": PhaseDef(0.25, oi_issue=1.0 / 6.0),
    "rho_eos2_b": PhaseDef(0.08),
    "rho_eos4": PhaseDef(0.16),
    "rho_eos5": PhaseDef(0.08),
    "rho_eos6": PhaseDef(0.06),
    "step2d1": PhaseDef(0.22),
    "step2d6": PhaseDef(0.18),
    "set_vbc1": PhaseDef(0.56),
    "set_vbc2": PhaseDef(0.56),
    "sff2": PhaseDef(0.13),
    "sff5": PhaseDef(0.21),
    "sff5_b": PhaseDef(0.16),
    "wsm51": PhaseDef(1.0, oi_issue=0.6),
    "wsm52": PhaseDef(1.0, oi_issue=0.6),
    "wsm53": PhaseDef(0.56),
}

#: Table 3's workload -> phase composition.
SPEC_WORKLOADS: Dict[int, Tuple[str, ...]] = {
    1: ("select_atoms2", "step3d_uv2"),
    2: ("select_atoms1", "step3d_uv4"),
    3: ("rhs3d1", "select_atoms3"),
    4: ("select_atoms4", "select_atoms5"),
    5: ("step3d_uv1", "rhs3d7"),
    6: ("rho_eos1", "rho_eos4"),
    7: ("rho_eos5", "select_atoms3"),
    8: ("rho_eos2", "rho_eos6"),
    9: ("wsm53", "select_atoms5"),
    10: ("rhs3d1", "rho_eos4"),
    11: ("step2d1", "step2d6"),
    12: ("step3d_uv3", "step3d_uv1"),
    13: ("set_vbc2",),
    14: ("set_vbc1",),
    15: ("rhs3d5",),
    16: ("wsm51",),
    17: ("wsm52",),
    18: ("wsm53",),
    19: ("rho_eos2",),
    20: ("sff2", "sff5"),
    21: ("sff5_b", "rho_eos6"),
    22: ("rho_eos2_b", "step3d_uv1"),
}


def spec_phase(name: str, scale: float = 1.0) -> Loop:
    """Build one Table 3 SPEC phase as a calibrated loop."""
    definition = SPEC_PHASES[name]
    return synth_phase(
        name,
        definition.oi_mem,
        oi_issue=definition.oi_issue,
        streaming=definition.streaming,
        scale=scale,
    )


def spec_workload(workload_id: int, scale: float = 1.0) -> Kernel:
    """Build SPEC workload ``WL<workload_id>`` as a multi-phase kernel."""
    phase_names = SPEC_WORKLOADS[workload_id]
    loops = tuple(spec_phase(name, scale=scale) for name in phase_names)
    array_length = max(loop.trip_count for loop in loops) + 2
    return Kernel(
        name=f"spec.WL{workload_id}",
        array_length=array_length,
        loops=loops,
    )
