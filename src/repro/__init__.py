"""repro — a full Python reproduction of *Occamy: Elastically Sharing a
SIMD Co-processor across Multiple CPU Cores* (ASPLOS 2023).

Quickstart::

    from repro import (
        Kernel, Loop, Assign, BinOp, Load, Param, compile_kernel,
        build_image, Job, run_policy, OCCAMY, table4_config,
    )

    kernel = Kernel(
        name="axpy",
        array_length=4096,
        loops=(
            Loop(
                "axpy",
                trip_count=4096,
                body=(
                    Assign(
                        "y",
                        BinOp("add", BinOp("mul", Param("a"), Load("x")), Load("y")),
                    ),
                ),
            ),
        ),
        params={"a": 2.0},
    )
    program = compile_kernel(kernel)
    result = run_policy(
        table4_config(), OCCAMY,
        [Job(program, build_image(kernel, core_id=0)), None],
    )
    print(result.total_cycles, result.metrics.simd_utilization())
"""

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    VectorConfig,
    experiment_config,
    table4_config,
)
from repro.common.errors import (
    AssemblyError,
    CompilationError,
    ConfigurationError,
    ReproError,
    SimulationError,
    VectorizationError,
)
from repro.compiler import (
    Assign,
    BinOp,
    Call,
    CompileOptions,
    Const,
    Kernel,
    Load,
    Loop,
    Param,
    PhaseInfo,
    Reduce,
    analyze_kernel,
    analyze_loop,
    build_image,
    compile_kernel,
    reference_execute,
)
from repro.core import (
    ALL_POLICIES,
    FTS,
    OCCAMY,
    PRIVATE,
    VLS,
    Job,
    Machine,
    Metrics,
    Policy,
    RooflineModel,
    RunResult,
    StallReason,
    greedy_partition,
    policy,
    run_policy,
    static_partition,
)
from repro.isa import OIValue, Program
from repro.memory import MemoryImage

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICIES",
    "Assign",
    "AssemblyError",
    "BinOp",
    "CacheConfig",
    "Call",
    "CompilationError",
    "CompileOptions",
    "ConfigurationError",
    "Const",
    "CoreConfig",
    "FTS",
    "Job",
    "Kernel",
    "Load",
    "Loop",
    "Machine",
    "MachineConfig",
    "MemoryConfig",
    "MemoryImage",
    "Metrics",
    "OCCAMY",
    "OIValue",
    "PRIVATE",
    "Param",
    "PhaseInfo",
    "Policy",
    "Program",
    "Reduce",
    "ReproError",
    "RooflineModel",
    "RunResult",
    "SimulationError",
    "StallReason",
    "VLS",
    "VectorConfig",
    "VectorizationError",
    "analyze_kernel",
    "experiment_config",
    "analyze_loop",
    "build_image",
    "compile_kernel",
    "greedy_partition",
    "policy",
    "reference_execute",
    "run_policy",
    "static_partition",
    "table4_config",
]
