"""Simulation service: a long-lived daemon serving simulation traffic.

Everything before this package was a one-shot process: each ``repro``
invocation paid interpreter startup, workload synthesis and cold cache
probes, and two concurrent callers could silently run the same
simulation twice.  The service turns the toolkit into the first layer
whose job is *serving traffic*: a daemon owns a bounded worker pool and
arbitrates many queued simulation requests onto it — the same shape as
the paper's §5 problem of arbitrating one scarce co-processor across
competing cores, and solved the same way, with an explicit, swappable
policy.

Modules
-------

:mod:`~repro.service.protocol`
    Line-delimited JSON framing plus the JSON-safe result summary
    (fingerprint digests) shared by server, client and tests.
:mod:`~repro.service.specs`
    The wire-level job description and its translation to a picklable
    :class:`~repro.analysis.parallel.SimTask`.
:mod:`~repro.service.queue`
    Priority queue with admission control (bounded depth, per-client
    quota, explicit backpressure) and pluggable scheduling policies
    (``fifo`` / ``spjf`` / ``fair``).
:mod:`~repro.service.workers`
    Supervised worker-process pool: per-job timeouts, crash detection,
    worker recycling.
:mod:`~repro.service.server`
    The asyncio daemon: socket endpoints, streaming job events, retry
    orchestration, drain/shutdown.
:mod:`~repro.service.client`
    Blocking stdlib-socket client used by the CLI and tests.
"""

from repro.service.client import ServiceClient, wait_for_server
from repro.service.queue import SCHEDULER_NAMES, CostModel, JobQueue
from repro.service.protocol import default_address, summarize_result
from repro.service.server import ServerOptions, SimulationServer
from repro.service.specs import build_task, normalize_spec
from repro.service.workers import WorkerPool

__all__ = [
    "CostModel",
    "JobQueue",
    "SCHEDULER_NAMES",
    "ServerOptions",
    "ServiceClient",
    "SimulationServer",
    "WorkerPool",
    "build_task",
    "default_address",
    "normalize_spec",
    "summarize_result",
    "wait_for_server",
]
