"""Fleet plumbing: shard routing, status aggregation, daemon supervision.

One simulation daemon is a single host's worth of capacity.  Production
scale means a *fleet*: N daemons, each owning its own worker pool and
queue, fronted by one :mod:`~repro.service.gateway` that decides which
shard runs which job.  This module holds everything about the fleet that
is independent of HTTP:

* :class:`HashRing` — consistent hashing of job identities onto shard
  names, so repeat submissions of the same spec land on the shard whose
  queue/cost-model/OS page cache is already warm for it, and so adding
  or removing a shard only remaps the keys that lived on it;
* :func:`choose_shard` — the pluggable routing policies (``hash`` /
  ``least-loaded`` / ``steal``), the service-level analogue of the
  paper's lane-allocation policies: *which shard serves this job* is an
  explicit, swappable decision, not an accident of connection order;
* :func:`aggregate_statuses` — folds per-daemon ``status`` payloads into
  one fleet view (queue depths, worker occupancy, cache hit rate, retry
  counts) shared by the gateway's ``/status`` endpoint and the
  multi-socket ``repro svc-status`` CLI;
* :class:`FleetManager` — spawns, scales and reaps ``repro serve``
  daemon subprocesses, each on its own socket, all sharing one result
  cache directory (the shared cache tier: content-hash keys make results
  location-independent, so any shard can serve any other shard's past
  work).
"""

from __future__ import annotations

import bisect
import hashlib
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, ServiceUnavailableError

#: Routing policies accepted by the gateway (``--routing``).
ROUTING_POLICIES = ("hash", "least-loaded", "steal")

#: Virtual nodes per shard on the hash ring.  Enough that a 2..32-shard
#: fleet balances within a few percent; small enough that rebuilding the
#: ring on scale events is trivial.
RING_REPLICAS = 64

#: Default queue-depth gap before the ``steal`` policy overrides the
#: hash-home shard in favour of the least-loaded one.
DEFAULT_STEAL_THRESHOLD = 4


def _ring_hash(value: str) -> int:
    """Stable 64-bit point on the ring (never Python's salted ``hash``)."""
    digest = hashlib.sha256(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto named shards.

    Each shard contributes :data:`RING_REPLICAS` virtual points; a key
    maps to the first point clockwise from its own hash.  The properties
    the fleet relies on:

    * **stability** — the same key always maps to the same live shard,
      so repeat submissions hit the warm shard;
    * **minimal disruption** — removing a shard only remaps keys that
      lived on it; keys on surviving shards do not move (asserted by
      ``tests/service/test_fleet.py``);
    * **failover order** — :meth:`preference` yields *all* shards in
      ring order from the key's point, giving a deterministic retry
      sequence when the home shard is down.
    """

    def __init__(self, nodes: Iterable[str], replicas: int = RING_REPLICAS) -> None:
        names = sorted(set(nodes))
        if not names:
            raise ConfigurationError("a hash ring needs at least one node")
        self.nodes: Tuple[str, ...] = tuple(names)
        points: List[Tuple[int, str]] = []
        for name in names:
            for replica in range(replicas):
                points.append((_ring_hash(f"{name}#{replica}"), name))
        points.sort()
        self._points = [point for point, _ in points]
        self._names = [name for _, name in points]

    def preference(self, key: str) -> List[str]:
        """Every node, deduplicated, in ring order from ``key``'s point."""
        start = bisect.bisect_right(self._points, _ring_hash(key))
        seen: List[str] = []
        for index in range(len(self._names)):
            name = self._names[(start + index) % len(self._names)]
            if name not in seen:
                seen.append(name)
                if len(seen) == len(self.nodes):
                    break
        return seen

    def node_for(self, key: str) -> str:
        """The key's home node."""
        start = bisect.bisect_right(self._points, _ring_hash(key))
        return self._names[start % len(self._names)]


def choose_shard(
    routing: str,
    ring: HashRing,
    signature: str,
    shards: Mapping[str, object],
    exclude: Iterable[str] = (),
    steal_threshold: int = DEFAULT_STEAL_THRESHOLD,
):
    """Pick the shard that should run the job identified by ``signature``.

    ``shards`` maps shard name to any object with ``alive`` (bool) and
    ``inflight`` (int, gateway-tracked jobs currently routed there).
    ``exclude`` names shards already tried this job (failover).  Returns
    the chosen shard object, or ``None`` when no live shard remains.

    Policies:

    ``hash``
        The signature's home on the consistent-hash ring; failover walks
        the ring order.  Repeat keys land on the warm shard.
    ``least-loaded``
        The live shard with the fewest gateway-tracked in-flight jobs
        (name breaks ties, so the choice is deterministic).
    ``steal``
        Hash-home routing, but when the home shard's in-flight depth
        exceeds the fleet minimum by more than ``steal_threshold`` the
        job is stolen by the least-loaded shard — cache affinity until a
        queue imbalance makes spreading worth losing it.
    """
    if routing not in ROUTING_POLICIES:
        raise ConfigurationError(
            f"unknown routing policy {routing!r}; choose from {ROUTING_POLICIES}"
        )
    excluded = set(exclude)
    candidates = [
        shard
        for name, shard in shards.items()
        if shard.alive and name not in excluded
    ]
    if not candidates:
        return None
    least = min(candidates, key=lambda shard: (shard.inflight, shard.name))
    if routing == "least-loaded":
        return least
    home = next(
        (
            shards[name]
            for name in ring.preference(signature)
            if shards[name].alive and name not in excluded
        ),
        None,
    )
    if home is None:  # pragma: no cover - candidates nonempty implies a home
        return least
    if routing == "steal" and home.inflight - least.inflight > steal_threshold:
        return least
    return home


# --- fleet-wide status aggregation -------------------------------------------


def aggregate_statuses(statuses: Sequence[Optional[Dict]]) -> Dict[str, object]:
    """Fold per-daemon ``status`` payloads into one fleet summary.

    ``None`` (or non-``ok``) entries count as unreachable shards.  The
    result carries summed queue depth, worker occupancy and counters,
    plus the fleet-wide cache hit rate (cache hits / submissions) — the
    number that proves the shared cache tier is working across shards.
    """
    reachable = [
        status for status in statuses if status is not None and status.get("ok")
    ]
    counters: Dict[str, int] = {}
    queued = busy = workers = 0
    for status in reachable:
        queue = status.get("queue") or {}
        pool = status.get("workers") or {}
        queued += int(queue.get("depth") or 0)
        busy += int(pool.get("busy") or 0)
        workers += int(pool.get("size") or 0)
        for key, value in (status.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                counters[key] = counters.get(key, 0) + int(value)
    submitted = counters.get("submitted", 0)
    hits = counters.get("cache_hits", 0)
    return {
        "shards": len(statuses),
        "reachable": len(reachable),
        "queued": queued,
        "busy_workers": busy,
        "workers": workers,
        "counters": counters,
        "cache_hit_rate": round(hits / submitted, 4) if submitted else 0.0,
    }


# --- daemon subprocess supervision -------------------------------------------


class ShardProcess:
    """One ``repro serve`` daemon subprocess owned by a :class:`FleetManager`."""

    def __init__(self, name: str, address: str, process: subprocess.Popen) -> None:
        self.name = name
        self.address = address
        self.process = process

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def reap(self, timeout_s: float = 10.0) -> None:
        """Wait briefly for a clean exit, then escalate terminate/kill."""
        try:
            self.process.wait(timeout=timeout_s)
            return
        except subprocess.TimeoutExpired:
            pass
        self.process.terminate()
        try:
            self.process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            self.process.kill()
            self.process.wait(timeout=5.0)


class FleetManager:
    """Spawns and supervises N daemon subprocesses on private sockets.

    Every shard shares the parent's environment — in particular
    ``REPRO_CACHE_DIR`` — so the fleet shares one result-cache tier and
    one persisted cost model (whose :meth:`~repro.service.queue.CostModel.save`
    merges rather than clobbers, precisely because N daemons write it).
    """

    def __init__(
        self,
        base_dir: Optional[os.PathLike] = None,
        workers: int = 2,
        scheduler: str = "fifo",
        queue_depth: int = 64,
        max_per_client: int = 16,
        job_timeout: float = 300.0,
        runner: Optional[str] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        if base_dir is None:
            from repro.analysis.result_cache import default_cache_dir

            base_dir = default_cache_dir() / "fleet"
        self.base_dir = Path(base_dir)
        self.workers = workers
        self.scheduler = scheduler
        self.queue_depth = queue_depth
        self.max_per_client = max_per_client
        self.job_timeout = job_timeout
        self.runner = runner
        self.env = env
        self._shards: Dict[str, ShardProcess] = {}
        self._next_index = 0

    # -- introspection ---------------------------------------------------------

    def shards(self) -> List[ShardProcess]:
        return list(self._shards.values())

    def addresses(self) -> List[str]:
        return [shard.address for shard in self._shards.values()]

    def pids(self) -> List[int]:
        return [shard.pid for shard in self._shards.values()]

    def __len__(self) -> int:
        return len(self._shards)

    # -- lifecycle -------------------------------------------------------------

    def _spawn(self) -> ShardProcess:
        index = self._next_index
        self._next_index += 1
        name = f"shard{index}"
        address = str(self.base_dir / f"{name}.sock")
        self.base_dir.mkdir(parents=True, exist_ok=True)
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            address,
            "--workers",
            str(self.workers),
            "--sched",
            self.scheduler,
            "--queue-depth",
            str(self.queue_depth),
            "--max-per-client",
            str(self.max_per_client),
            "--job-timeout",
            str(self.job_timeout),
        ]
        if self.runner:
            command += ["--runner", self.runner]
        log_path = self.base_dir / f"{name}.log"
        with open(log_path, "ab") as log:
            process = subprocess.Popen(
                command,
                stdout=log,
                stderr=subprocess.STDOUT,
                env=self.env,
            )
        shard = ShardProcess(name=name, address=address, process=process)
        self._shards[name] = shard
        return shard

    def start(self, count: int, deadline_s: float = 60.0) -> List[ShardProcess]:
        """Spawn ``count`` additional daemons and wait until all answer
        ``ping``; on any startup failure the new shards are torn down."""
        from repro.service.client import wait_for_server

        spawned = [self._spawn() for _ in range(count)]
        deadline = time.monotonic() + deadline_s
        try:
            for shard in spawned:
                remaining = max(1.0, deadline - time.monotonic())
                if not shard.alive():
                    raise ServiceUnavailableError(
                        f"{shard.name} exited during startup "
                        f"(code {shard.process.poll()}); see "
                        f"{self.base_dir / (shard.name + '.log')}"
                    )
                wait_for_server(shard.address, deadline_s=remaining)
        except Exception:
            for shard in spawned:
                self.stop_shard(shard.name)
            raise
        return spawned

    def stop_shard(self, name: str) -> None:
        """Best-effort clean shutdown of one shard, then reap the process."""
        shard = self._shards.pop(name, None)
        if shard is None:
            return
        if shard.alive():
            try:
                from repro.service.client import ServiceClient

                with ServiceClient(shard.address, timeout=10.0) as client:
                    client.shutdown()
            except Exception:
                pass
        shard.reap()

    def stop_all(self) -> None:
        for name in list(self._shards):
            self.stop_shard(name)

    def reap(self, name: str) -> None:
        """Reap a shard something else (the gateway) already shut down."""
        shard = self._shards.pop(name, None)
        if shard is not None:
            shard.reap()
