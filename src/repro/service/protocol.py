"""Wire protocol shared by the daemon, the client and the CLI.

The service speaks **line-delimited JSON** over a local stream socket:
every message is one JSON object terminated by ``"\\n"``.  Requests carry
an ``op`` field; responses carry ``ok`` plus op-specific payload, and
streaming responses (job progress) carry an ``event`` field.  The framing
is deliberately trivial — any language (or ``nc``) can drive the daemon.

Result payloads never ship a pickled :class:`~repro.core.machine.RunResult`
across the socket.  Instead :func:`summarize_result` reduces a run to a
JSON-safe summary whose core is a **fingerprint digest map**: one SHA-256
per named section of :func:`repro.validation.fingerprint.fingerprint_sections`.
Two runs are bit-identical exactly when their digest maps are equal, so a
client can prove a daemon-served result matches a direct in-process
``Machine.run`` without moving megabytes of metrics.  The full
``RunResult`` still lands in the persistent result cache, where any local
process can load it by ``key``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from repro.common.errors import ServiceProtocolError

#: Upper bound on one framed message; a line longer than this is a
#: protocol violation (submissions and summaries are all far smaller).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Environment variable overriding the default daemon socket path.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"


def default_address() -> str:
    """``$REPRO_SERVICE_SOCKET``, else a per-user path under the cache dir.

    Addresses are Unix-socket paths; a ``tcp:HOST:PORT`` string selects a
    loopback TCP transport instead (for platforms without ``AF_UNIX``).
    """
    override = os.environ.get(SOCKET_ENV)
    if override:
        return override
    from repro.analysis.result_cache import default_cache_dir

    return str(default_cache_dir() / "service.sock")


def is_tcp_address(address: str) -> bool:
    return address.startswith("tcp:")


def split_tcp_address(address: str) -> tuple:
    """``tcp:HOST:PORT`` → ``(host, port)``."""
    body = address[len("tcp:"):]
    host, _, port = body.rpartition(":")
    if not host or not port.isdigit():
        raise ServiceProtocolError(
            f"bad TCP address {address!r}; expected tcp:HOST:PORT"
        )
    return host, int(port)


def encode_message(message: Dict[str, object]) -> bytes:
    """One protocol frame: compact JSON plus the line terminator."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    ) + b"\n"


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one received frame; malformed input raises, never crashes."""
    if len(line) > MAX_LINE_BYTES:
        raise ServiceProtocolError(
            f"oversized frame ({len(line)} bytes > {MAX_LINE_BYTES})"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ServiceProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


# --- result summaries ---------------------------------------------------------


def fingerprint_digests(result) -> Dict[str, str]:
    """SHA-256 per named fingerprint section of ``result``.

    Section values are the hashable tuples produced by
    :func:`~repro.validation.fingerprint.fingerprint_sections`; their
    ``repr`` is deterministic across processes, so equal digests mean
    bit-identical observable state.
    """
    from repro.validation.fingerprint import fingerprint_sections

    digests = {}
    for section, value in fingerprint_sections(result).items():
        digests[section] = hashlib.sha256(repr(value).encode("utf-8")).hexdigest()
    return digests


def summarize_result(result, key: Optional[str] = None) -> Dict[str, object]:
    """The JSON-safe summary of one run served over the socket."""
    return {
        "policy": result.policy_key,
        "total_cycles": result.total_cycles,
        "core_cycles": list(result.core_cycles),
        "key": key,
        "fingerprint": fingerprint_digests(result),
    }


def load_cached_result(key: str):
    """Fetch the full :class:`RunResult` behind a served summary's ``key``.

    Returns ``None`` when the persistent cache is disabled or the entry
    has been evicted.
    """
    from repro.analysis import result_cache

    cache = result_cache.default_cache()
    if cache is None or key is None:
        return None
    return cache.get(key)


def cleanup_socket(address: str) -> None:
    """Best-effort removal of a stale Unix socket file."""
    if is_tcp_address(address):
        return
    try:
        Path(address).unlink()
    except OSError:
        pass
