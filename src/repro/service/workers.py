"""Supervised worker-process pool for the simulation daemon.

Unlike the sweep engine's fire-and-forget ``ProcessPoolExecutor``, the
service needs to *supervise* its workers: bind each dispatched job to a
specific process so a hung job can be killed on timeout, detect crashed
workers and surface the loss as a retryable event, and recycle workers
after N jobs so slow leaks in long-lived processes cannot accumulate.

Design:

* each worker is one ``multiprocessing.Process`` with a **private** task
  queue and a **private** result queue — killing a worker mid-write can
  only corrupt its own queues, which are discarded on respawn;
* the pool is polled (:meth:`WorkerPool.poll`), never blocked on: the
  asyncio server calls ``poll()`` from its pump loop and receives plain
  :class:`PoolEvent` records (``done`` / ``error`` / ``crashed`` /
  ``timeout``).  Retry policy lives in the server, which owns the queue;
* results are drained *before* liveness/timeout checks, so a job that
  finished in the same poll window as its deadline is reported as done,
  never spuriously killed;
* the default job runner resolves the persistent result cache around
  :func:`repro.analysis.parallel.execute_task` — a worker that finishes a
  job has already landed the full ``RunResult`` in the cache, so results
  survive client disconnects and daemon restarts.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.errors import ConfigurationError

#: Default: recycle a worker after this many completed jobs.
DEFAULT_RECYCLE_AFTER = 64


def run_cached_task(task) -> object:
    """Default worker runner: result-cache-wrapped ``execute_task``.

    Mirrors the sweep engine's cache discipline so daemon-served results
    are interchangeable with ``--jobs`` sweep results: same key, same
    payload, same cache directory.
    """
    from repro.analysis import parallel, result_cache

    cache = result_cache.default_cache()
    key = parallel.task_key(task) if cache is not None else None
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    result = parallel.execute_task(task)
    if cache is not None:
        cache.put(key, result)
    return result


def _worker_main(task_q, result_q, runner, recycle_after) -> None:
    """Worker process loop: run jobs until recycled or told to stop."""
    done = 0
    while True:
        item = task_q.get()
        if item is None:
            break
        job_id, payload = item
        try:
            result = runner(payload)
            result_q.put((job_id, "ok", result))
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            result_q.put((job_id, "error", f"{type(exc).__name__}: {exc}"))
        done += 1
        if recycle_after is not None and done >= recycle_after:
            result_q.put((None, "recycled", None))
            break


@dataclass
class PoolEvent:
    """One supervision event surfaced by :meth:`WorkerPool.poll`.

    ``kind`` is ``"done"`` (with ``result``), ``"error"`` (runner raised;
    deterministic, not retried), ``"crashed"`` (worker died mid-job) or
    ``"timeout"`` (job exceeded its deadline and the worker was killed).
    """

    kind: str
    job_id: str
    worker_pid: Optional[int] = None
    result: object = None
    error: Optional[str] = None


class _Worker:
    """Supervisor-side handle for one worker process."""

    def __init__(self, context, runner, recycle_after) -> None:
        self._context = context
        self._runner = runner
        self._recycle_after = recycle_after
        self.job_id: Optional[str] = None
        self.dispatched_at: Optional[float] = None
        self._spawn()

    def _spawn(self) -> None:
        self.task_q = self._context.Queue()
        self.result_q = self._context.Queue()
        self.proc = self._context.Process(
            target=_worker_main,
            args=(self.task_q, self.result_q, self._runner, self._recycle_after),
            daemon=True,
        )
        self.proc.start()
        self.job_id = None
        self.dispatched_at = None

    def respawn(self) -> None:
        """Discard the dead/killed process and its (possibly corrupt)
        queues, and start a fresh worker."""
        self._discard()
        self._spawn()

    def _discard(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5.0)
            if self.proc.is_alive():  # pragma: no cover - last resort
                self.proc.kill()
                self.proc.join(timeout=5.0)
        for queue in (self.task_q, self.result_q):
            try:
                queue.close()
                queue.cancel_join_thread()
            except (OSError, AttributeError):  # pragma: no cover
                pass

    def stop(self) -> None:
        """Graceful stop: sentinel, short join, then terminate."""
        if self.proc.is_alive():
            try:
                self.task_q.put_nowait(None)
            except (OSError, ValueError):  # pragma: no cover - full/closed
                pass
            self.proc.join(timeout=1.0)
        self._discard()


class WorkerPool:
    """A fixed-size set of supervised worker processes.

    ``runner`` is the module-level callable a worker applies to each
    dispatched payload (default :func:`run_cached_task`); tests inject
    slow/crashing runners through it.  ``job_timeout`` is the per-job
    wall-clock deadline enforced by :meth:`poll`.
    """

    def __init__(
        self,
        workers: int = 2,
        runner: Callable = run_cached_task,
        job_timeout: Optional[float] = 300.0,
        recycle_after: Optional[int] = DEFAULT_RECYCLE_AFTER,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers <= 0:
            raise ConfigurationError(f"workers must be positive, got {workers}")
        if job_timeout is not None and job_timeout <= 0:
            raise ConfigurationError(
                f"job_timeout must be positive or None, got {job_timeout}"
            )
        if recycle_after is not None and recycle_after <= 0:
            raise ConfigurationError(
                f"recycle_after must be positive or None, got {recycle_after}"
            )
        self.size = workers
        self.runner = runner
        self.job_timeout = job_timeout
        self.recycle_after = recycle_after
        if mp_context is None:
            # fork keeps runners injectable (tests) and inherits the
            # configured cache; fall back where fork is unavailable.
            mp_context = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        self._context = multiprocessing.get_context(mp_context)
        self._workers: List[_Worker] = []
        self.recycled = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._workers:
            return
        self._workers = [
            _Worker(self._context, self.runner, self.recycle_after)
            for _ in range(self.size)
        ]

    def stop(self) -> None:
        """Stop every worker (graceful sentinel, then terminate)."""
        for worker in self._workers:
            worker.stop()
        self._workers = []

    def worker_pids(self) -> List[int]:
        return [w.proc.pid for w in self._workers if w.proc.pid is not None]

    # -- dispatch --------------------------------------------------------------

    def idle_count(self) -> int:
        return sum(1 for w in self._workers if w.job_id is None and w.proc.is_alive())

    def busy_count(self) -> int:
        return sum(1 for w in self._workers if w.job_id is not None)

    def dispatch(self, job_id: str, payload) -> int:
        """Hand ``payload`` to an idle worker; returns the worker's pid.

        Callers must check :meth:`idle_count` first; dispatching with no
        idle worker raises ``RuntimeError`` (a server bug, not load).
        """
        for worker in self._workers:
            if worker.job_id is None and worker.proc.is_alive():
                worker.job_id = job_id
                worker.dispatched_at = time.monotonic()
                worker.task_q.put((job_id, payload))
                return worker.proc.pid
        raise RuntimeError("dispatch with no idle worker")

    def pid_for_job(self, job_id: str) -> Optional[int]:
        for worker in self._workers:
            if worker.job_id == job_id:
                return worker.proc.pid
        return None

    # -- supervision -----------------------------------------------------------

    def poll(self, now: Optional[float] = None) -> List[PoolEvent]:
        """Drain results and enforce liveness/timeouts; never blocks.

        Order matters: each worker's result queue is drained *before* its
        liveness and deadline checks, so a completed job is never
        misreported as crashed or timed out.
        """
        if now is None:
            now = time.monotonic()
        events: List[PoolEvent] = []
        for worker in self._workers:
            pid = worker.proc.pid
            # 1. drain finished work
            while True:
                try:
                    if worker.result_q.empty():
                        break
                    job_id, tag, payload = worker.result_q.get_nowait()
                except (OSError, EOFError, ValueError):  # pragma: no cover
                    break
                except Exception:  # pragma: no cover - queue race
                    break
                if tag == "recycled":
                    self.recycled += 1
                    continue
                if job_id == worker.job_id:
                    worker.job_id = None
                    worker.dispatched_at = None
                if tag == "ok":
                    events.append(
                        PoolEvent("done", job_id, worker_pid=pid, result=payload)
                    )
                else:
                    events.append(
                        PoolEvent("error", job_id, worker_pid=pid, error=payload)
                    )
            # 2. liveness: a dead worker holding a job crashed mid-job
            if not worker.proc.is_alive():
                if worker.job_id is not None:
                    events.append(
                        PoolEvent(
                            "crashed",
                            worker.job_id,
                            worker_pid=pid,
                            error=f"worker pid {pid} exited "
                            f"(code {worker.proc.exitcode}) mid-job",
                        )
                    )
                worker.respawn()
                continue
            # 3. deadline enforcement
            if (
                worker.job_id is not None
                and self.job_timeout is not None
                and worker.dispatched_at is not None
                and now - worker.dispatched_at > self.job_timeout
            ):
                job_id = worker.job_id
                events.append(
                    PoolEvent(
                        "timeout",
                        job_id,
                        worker_pid=pid,
                        error=f"job exceeded {self.job_timeout:.1f}s deadline; "
                        f"worker pid {pid} killed",
                    )
                )
                worker.respawn()
        return events

    def kill_worker(self, pid: int) -> bool:
        """Forcibly kill one worker by pid (tests / admin).

        The next :meth:`poll` observes the death, reports any bound job
        as ``crashed`` and respawns the worker.
        """
        for worker in self._workers:
            if worker.proc.pid == pid:
                try:
                    os.kill(pid, 9)
                except OSError:  # pragma: no cover
                    pass
                worker.proc.join(timeout=5.0)
                return True
        return False
