"""HTTP/JSON gateway: one front door for a fleet of simulation daemons.

The gateway is the fleet-scale analogue of the paper's lane manager: many
submitters compete for a pool of shards, and the gateway turns that
contention into explicit policy.  It speaks plain HTTP/1.1 + JSON to
clients (any language, ``curl``-able) and the existing line-delimited
JSON socket protocol to each daemon, adding exactly four things a single
daemon cannot provide:

* **shard routing** — each submission is routed by consistent hash of
  its spec signature (the stable identity behind the content-hash
  simulation key), so repeat keys land on the warm shard; ``least-loaded``
  and ``steal`` policies trade that affinity for queue balance
  (:func:`repro.service.fleet.choose_shard`);
* **fleet-wide single-flight** — identical specs submitted concurrently
  through the gateway execute once *globally*, even when shard routing
  alone would have sent them to different daemons; late arrivals attach
  to the first submission's in-flight future;
* **health-checked failover** — a daemon that dies mid-run (connection
  lost before the terminal event) is marked down and the job is resubmitted
  to the next shard in ring order; because specs are idempotent
  descriptions and results are content-addressed, a retried job is
  bit-identical to a first-try run;
* **aggregation** — ``/status`` fans out to every shard and folds the
  answers into one fleet view (queue depths, worker occupancy, cache hit
  rate, retry counts).

Endpoints (all responses JSON):

``GET /healthz``
    Liveness: 200 with shard alive counts, 503 when no shard is up.
``POST /submit``
    Body ``{"spec": {...}, "client": "name"}``.  Blocks until the job is
    terminal; 200 carries the ``done`` event (summary + fingerprint
    digests + ``gateway`` routing metadata), 500 a ``failed`` event,
    429 an admission rejection (explicit backpressure, never buffering),
    502 when no shard could be reached.
``POST /drain``
    Quiesce every shard; replies once queued+running work is finished.
``POST /scale``
    Body ``{"n": N}``.  Grow or shrink the fleet (only when the gateway
    owns its daemons through a :class:`~repro.service.fleet.FleetManager`);
    shrinking drains retiring shards first.
``POST /shutdown``
    Body ``{"drain": bool}``.  Stop every shard, then the gateway.

Admission rejections are *not* failed over: backpressure is a deliberate
signal the client must see, otherwise a full fleet would buffer without
bound at the gateway.  Only transport loss (shard death) triggers
failover.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    AdmissionError,
    ConfigurationError,
    ServiceProtocolError,
    ServiceUnavailableError,
)
from repro.service import protocol
from repro.service.fleet import (
    DEFAULT_STEAL_THRESHOLD,
    HashRing,
    ROUTING_POLICIES,
    aggregate_statuses,
    choose_shard,
)
from repro.service.specs import normalize_spec, task_signature

#: Job events that end a submission stream.
TERMINAL_EVENTS = ("done", "failed", "cancelled")

#: Upper bound on one HTTP request body.
MAX_BODY_BYTES = protocol.MAX_LINE_BYTES

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


@dataclass
class GatewayOptions:
    """Everything tunable about one gateway instance."""

    shards: Sequence[str] = ()
    host: str = "127.0.0.1"
    port: int = 0
    routing: str = "hash"
    steal_threshold: int = DEFAULT_STEAL_THRESHOLD
    health_interval: float = 2.0
    connect_timeout: float = 10.0
    #: Per-job wall-clock bound on one shard conversation (ack + events).
    shard_timeout: float = 600.0
    #: A FleetManager when the gateway owns its daemons (enables /scale
    #: and process reaping on /shutdown).
    fleet: object = None


@dataclass
class ShardState:
    """Gateway-side view of one daemon."""

    name: str
    address: str
    alive: bool = True
    #: Gateway-tracked jobs currently routed here (drives least-loaded/steal).
    inflight: int = 0
    routed: int = 0
    completed: int = 0
    failures: int = 0
    last_status: Optional[Dict[str, object]] = field(default=None, repr=False)

    def public(self) -> Dict[str, object]:
        return {
            "shard": self.name,
            "address": self.address,
            "alive": self.alive,
            "inflight": self.inflight,
            "routed": self.routed,
            "completed": self.completed,
            "failures": self.failures,
        }


class Gateway:
    """The fleet front door.  ``Gateway(options).run()`` serves until shutdown."""

    def __init__(self, options: Optional[GatewayOptions] = None, **overrides) -> None:
        options = options or GatewayOptions(**overrides)
        if options.routing not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {options.routing!r}; "
                f"choose from {ROUTING_POLICIES}"
            )
        self.options = options
        addresses = list(options.shards)
        if not addresses and options.fleet is not None:
            addresses = options.fleet.addresses()
        if not addresses:
            raise ConfigurationError("a gateway needs at least one shard address")
        self.shards: Dict[str, ShardState] = {}
        if options.fleet is not None and not options.shards:
            for shard in options.fleet.shards():
                self.shards[shard.name] = ShardState(shard.name, shard.address)
        else:
            for index, address in enumerate(addresses):
                name = f"shard{index}"
                self.shards[name] = ShardState(name, address)
        self.ring = HashRing(self.shards)
        self._singleflight: Dict[str, asyncio.Future] = {}
        self.counters: Dict[str, int] = {
            "requests": 0,
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "coalesced": 0,
            "failovers": 0,
            "unroutable": 0,
        }
        self.bound_port: Optional[int] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at = time.monotonic()

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> None:
        """Blocking entry point used by ``repro fleet serve``."""
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        await self.start()
        try:
            await self.wait_closed()
        finally:
            await self.aclose()

    async def start(self) -> None:
        self._stop_event = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_conn, self.options.host, self.options.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._health_task = self._loop.create_task(self._health_loop())

    async def wait_closed(self) -> None:
        assert self._stop_event is not None
        await self._stop_event.wait()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def stop_threadsafe(self) -> None:
        loop = getattr(self, "_loop", None)
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.request_stop)

    async def aclose(self) -> None:
        self.request_stop()
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:  # pragma: no cover
                pass
            self._server = None
        if getattr(self, "_health_task", None) is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except (asyncio.CancelledError, Exception):
                pass
            self._health_task = None

    # -- shard conversations ---------------------------------------------------

    async def _open(self, address: str):
        if protocol.is_tcp_address(address):
            host, port = protocol.split_tcp_address(address)
            connect = asyncio.open_connection(
                host, port, limit=protocol.MAX_LINE_BYTES
            )
        else:
            connect = asyncio.open_unix_connection(
                address, limit=protocol.MAX_LINE_BYTES
            )
        try:
            return await asyncio.wait_for(connect, self.options.connect_timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceUnavailableError(
                f"cannot reach daemon at {address}: {exc}"
            ) from None

    async def _read_frame(self, reader, timeout: float) -> Dict[str, object]:
        try:
            line = await asyncio.wait_for(reader.readline(), timeout)
        except asyncio.TimeoutError:
            raise ServiceUnavailableError(
                f"daemon did not respond within {timeout:.1f}s"
            ) from None
        except (OSError, ValueError) as exc:
            raise ServiceUnavailableError(f"daemon connection lost: {exc}") from None
        if not line:
            raise ServiceUnavailableError("daemon closed the connection")
        return protocol.decode_line(line)

    async def shard_request(
        self, address: str, message: Dict[str, object], timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """One request → one response against a single shard."""
        reader, writer = await self._open(address)
        try:
            writer.write(protocol.encode_message(message))
            try:
                await writer.drain()
            except (ConnectionError, OSError) as exc:
                raise ServiceUnavailableError(
                    f"daemon connection lost: {exc}"
                ) from None
            return await self._read_frame(
                reader, timeout if timeout is not None else self.options.shard_timeout
            )
        finally:
            await self._close_writer(writer)

    @staticmethod
    async def _close_writer(writer) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:  # pragma: no cover - teardown race
            pass

    # -- submission: single-flight + routing + failover ------------------------

    async def submit(
        self, spec: Dict[str, object], client: str = "gateway"
    ) -> Dict[str, object]:
        """Route one submission; returns the terminal job event.

        Raises :class:`ServiceProtocolError` (bad spec),
        :class:`AdmissionError` (backpressure — deliberately not failed
        over) or :class:`ServiceUnavailableError` (no shard reachable).
        """
        spec = normalize_spec(spec)
        signature = task_signature(spec)
        self.counters["submitted"] += 1
        existing = self._singleflight.get(signature)
        if existing is not None:
            # Fleet-wide single-flight: attach to the in-flight submission.
            self.counters["coalesced"] += 1
            event = dict(await asyncio.shield(existing))
            gateway_meta = dict(event.get("gateway") or {})
            gateway_meta["coalesced"] = True
            event["gateway"] = gateway_meta
            return event
        future: asyncio.Future = self._loop.create_future()
        self._singleflight[signature] = future
        try:
            event = await self._submit_failover(spec, signature, client)
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()  # consumed: waiters re-await, no GC warning
            raise
        else:
            if not future.cancelled():
                future.set_result(event)
            return event
        finally:
            self._singleflight.pop(signature, None)

    async def _submit_failover(
        self, spec: Dict[str, object], signature: str, client: str
    ) -> Dict[str, object]:
        tried: set = set()
        failovers = 0
        last_error: Optional[ServiceUnavailableError] = None
        while True:
            shard = choose_shard(
                self.options.routing,
                self.ring,
                signature,
                self.shards,
                exclude=tried,
                steal_threshold=self.options.steal_threshold,
            )
            if shard is None:
                self.counters["unroutable"] += 1
                raise ServiceUnavailableError(
                    f"no live shard left for job (tried {sorted(tried) or 'none'}): "
                    f"{last_error}"
                )
            tried.add(shard.name)
            shard.inflight += 1
            shard.routed += 1
            try:
                event = await self._submit_to_shard(shard, spec, client)
            except ServiceUnavailableError as exc:
                # The shard died mid-conversation: mark it down (the
                # health loop revives it) and retry on the next shard in
                # ring order.  Specs are idempotent descriptions, so the
                # retried run is bit-identical to a first-try run.
                shard.alive = False
                shard.failures += 1
                self.counters["failovers"] += 1
                failovers += 1
                last_error = exc
                continue
            except AdmissionError:
                self.counters["rejected"] += 1
                raise
            finally:
                shard.inflight -= 1
            shard.completed += 1
            self.counters["completed" if event.get("event") == "done" else "failed"] += 1
            event = dict(event)
            event["gateway"] = {
                "shard": shard.name,
                "failovers": failovers,
                "coalesced": False,
            }
            return event

    async def _submit_to_shard(
        self, shard: ShardState, spec: Dict[str, object], client: str
    ) -> Dict[str, object]:
        reader, writer = await self._open(shard.address)
        try:
            writer.write(
                protocol.encode_message(
                    {"op": "submit", "spec": spec, "client": client, "wait": True}
                )
            )
            try:
                await writer.drain()
            except (ConnectionError, OSError) as exc:
                raise ServiceUnavailableError(
                    f"shard {shard.name} connection lost: {exc}"
                ) from None
            ack = await self._read_frame(reader, self.options.shard_timeout)
            if not ack.get("ok"):
                reason = str(ack.get("error", "rejected"))
                detail = str(ack.get("detail", ack))
                if reason == "protocol":
                    raise ServiceProtocolError(detail)
                raise AdmissionError(detail, reason=reason)
            event = ack
            while event.get("event") not in TERMINAL_EVENTS:
                event = await self._read_frame(reader, self.options.shard_timeout)
            return event
        finally:
            await self._close_writer(writer)

    def shard_for_signature(self, signature: str) -> str:
        """The hash-home shard name for a spec signature (tests, docs)."""
        return self.ring.node_for(signature)

    # -- health ----------------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.options.health_interval)
            await self.check_health()

    async def check_health(self) -> Dict[str, bool]:
        """Ping every shard; flips ``alive`` both ways (down *and* revived)."""

        async def probe(shard: ShardState) -> None:
            try:
                reply = await self.shard_request(
                    shard.address, {"op": "ping"}, timeout=self.options.connect_timeout
                )
                shard.alive = bool(reply.get("ok"))
            except (ServiceUnavailableError, ServiceProtocolError):
                shard.alive = False

        await asyncio.gather(*(probe(shard) for shard in list(self.shards.values())))
        return {shard.name: shard.alive for shard in self.shards.values()}

    # -- fleet-wide operations -------------------------------------------------

    async def fleet_status(self) -> Dict[str, object]:
        """Fan ``status`` out to every shard; fold into one fleet view."""

        async def fetch(shard: ShardState) -> Optional[Dict[str, object]]:
            try:
                status = await self.shard_request(
                    shard.address, {"op": "status"}, timeout=30.0
                )
            except (ServiceUnavailableError, ServiceProtocolError) as exc:
                shard.alive = False
                shard.last_status = None
                return {"ok": False, "error": str(exc)}
            shard.alive = True
            shard.last_status = status
            return status

        states = list(self.shards.values())
        statuses = await asyncio.gather(*(fetch(shard) for shard in states))
        return {
            "ok": True,
            "op": "fleet-status",
            "gateway": {
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "http": f"{self.options.host}:{self.bound_port}",
                "routing": self.options.routing,
                "steal_threshold": self.options.steal_threshold,
                "counters": dict(self.counters),
                "singleflight": len(self._singleflight),
                "alive": sum(1 for shard in states if shard.alive),
            },
            "totals": aggregate_statuses(statuses),
            "shards": [
                dict(shard.public(), status=status)
                for shard, status in zip(states, statuses)
            ],
        }

    async def drain_fleet(self) -> Dict[str, object]:
        """Quiesce every shard; replies once all pending work finished."""

        async def drain(shard: ShardState) -> int:
            try:
                reply = await self.shard_request(
                    shard.address, {"op": "drain"}, timeout=self.options.shard_timeout
                )
                return int(reply.get("drained") or 0)
            except (ServiceUnavailableError, ServiceProtocolError):
                shard.alive = False
                return 0

        drained = await asyncio.gather(
            *(drain(shard) for shard in list(self.shards.values()))
        )
        return {"ok": True, "op": "drain", "drained": sum(drained)}

    async def scale_fleet(self, count: int) -> Dict[str, object]:
        """Grow or shrink the owned fleet to ``count`` shards."""
        fleet = self.options.fleet
        if fleet is None:
            raise ConfigurationError(
                "this gateway fronts externally-managed daemons; scale them "
                "directly and restart the gateway"
            )
        if count < 1:
            raise ServiceProtocolError(f"fleet size must be >= 1, got {count}")
        current = len(self.shards)
        if count > current:
            spawned = await asyncio.to_thread(fleet.start, count - current)
            for shard in spawned:
                self.shards[shard.name] = ShardState(shard.name, shard.address)
        elif count < current:
            retiring = list(self.shards.values())[count:]
            for state in retiring:
                try:
                    await self.shard_request(
                        state.address,
                        {"op": "shutdown", "drain": True},
                        timeout=self.options.shard_timeout,
                    )
                except (ServiceUnavailableError, ServiceProtocolError):
                    pass
                await asyncio.to_thread(fleet.reap, state.name)
                del self.shards[state.name]
        self.ring = HashRing(self.shards)
        return {
            "ok": True,
            "op": "scale",
            "shards": [shard.public() for shard in self.shards.values()],
        }

    async def shutdown_fleet(self, drain: bool = False) -> Dict[str, object]:
        """Stop every shard (optionally draining first), then the gateway."""

        async def stop(shard: ShardState) -> None:
            try:
                await self.shard_request(
                    shard.address,
                    {"op": "shutdown", "drain": drain},
                    timeout=self.options.shard_timeout,
                )
            except (ServiceUnavailableError, ServiceProtocolError):
                pass

        await asyncio.gather(*(stop(shard) for shard in list(self.shards.values())))
        if self.options.fleet is not None:
            await asyncio.to_thread(self.options.fleet.stop_all)
        # Reply first, stop just after: the caller gets a clean response.
        self._loop.call_later(0.05, self.request_stop)
        return {"ok": True, "op": "shutdown"}

    # -- HTTP layer ------------------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                status, payload = await self._dispatch(method, path, body)
                data = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: keep-alive\r\n\r\n"
                ).encode("latin-1")
                writer.write(head + data)
                await writer.drain()
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            ValueError,
            OSError,
        ):
            pass
        finally:
            await self._close_writer(writer)

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, bytes]]:
        """Parse one HTTP/1.1 request; None on a cleanly closed connection."""
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed request line {line!r}")
        method = parts[0].decode("latin-1").upper()
        path = parts[1].decode("latin-1").split("?", 1)[0]
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ValueError(f"bad Content-Length {value!r}") from None
        if content_length > MAX_BODY_BYTES:
            raise ValueError(f"oversized request body ({content_length} bytes)")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        self.counters["requests"] += 1
        try:
            return await self._route(method, path, body)
        except ServiceProtocolError as exc:
            return 400, {"ok": False, "error": "protocol", "detail": str(exc)}
        except AdmissionError as exc:
            return 429, {
                "ok": False,
                "error": exc.reason,
                "detail": str(exc),
                "retry_after_ms": 250,
            }
        except ServiceUnavailableError as exc:
            return 502, {"ok": False, "error": "unavailable", "detail": str(exc)}
        except ConfigurationError as exc:
            return 409, {"ok": False, "error": "configuration", "detail": str(exc)}

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"ok": False, "error": "method-not-allowed"}
            alive = sum(1 for shard in self.shards.values() if shard.alive)
            payload = {
                "ok": alive > 0,
                "alive": alive,
                "shards": len(self.shards),
                "routing": self.options.routing,
            }
            return (200 if alive else 503), payload
        if path == "/status":
            if method != "GET":
                return 405, {"ok": False, "error": "method-not-allowed"}
            return 200, await self.fleet_status()
        if path == "/submit":
            if method != "POST":
                return 405, {"ok": False, "error": "method-not-allowed"}
            message = self._parse_body(body)
            spec = message.get("spec")
            if spec is None:
                raise ServiceProtocolError('submit body needs a "spec" object')
            client = str(message.get("client") or "http")
            event = await self.submit(spec, client=client)
            done = event.get("event") == "done"
            return (200 if done else 500), dict(event, ok=done)
        if path == "/drain":
            if method != "POST":
                return 405, {"ok": False, "error": "method-not-allowed"}
            return 200, await self.drain_fleet()
        if path == "/scale":
            if method != "POST":
                return 405, {"ok": False, "error": "method-not-allowed"}
            message = self._parse_body(body)
            count = message.get("n")
            if not isinstance(count, int) or isinstance(count, bool):
                raise ServiceProtocolError(f'scale body needs an integer "n", got {count!r}')
            return 200, await self.scale_fleet(count)
        if path == "/shutdown":
            if method != "POST":
                return 405, {"ok": False, "error": "method-not-allowed"}
            message = self._parse_body(body) if body else {}
            return 200, await self.shutdown_fleet(drain=bool(message.get("drain")))
        return 404, {"ok": False, "error": "not-found", "path": path}

    @staticmethod
    def _parse_body(body: bytes) -> Dict[str, object]:
        if not body:
            return {}
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceProtocolError(f"undecodable request body: {exc}") from None
        if not isinstance(message, dict):
            raise ServiceProtocolError(
                f"request body must be a JSON object, got {type(message).__name__}"
            )
        return message


def serve_in_thread(gateway: Gateway, deadline_s: float = 15.0):
    """Run ``gateway`` on a daemon thread; returns once the port is bound.

    Shared by the test fixtures and the fleet benchmark harness — the
    gateway's asyncio loop lives on the thread, the caller keeps the
    handle for ``stop_threadsafe``.
    """
    import threading

    thread = threading.Thread(target=gateway.run, daemon=True)
    thread.start()
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if gateway.bound_port is not None:
            return thread
        if not thread.is_alive():
            break
        time.sleep(0.01)
    raise ServiceUnavailableError("gateway did not bind within the deadline")
