"""Job specs: the wire-level description of one simulation request.

Clients describe work as small JSON objects (a *spec*), not pickled
Python — the daemon materialises each spec into the same picklable
:class:`~repro.analysis.parallel.SimTask` the parallel sweep engine
already executes, so a daemon-served run is *by construction* the same
computation a direct in-process run would perform.

A spec looks like::

    {"kind": "pair",     "suite": "spec", "mem": 20, "comp": 17,
     "policy": "occamy", "scale": 0.3}
    {"kind": "motivate", "policy": "fts", "scale": 0.5}
    {"kind": "group",    "group": [0, 1, 2, 3], "policy": "cts",
     "scale": 0.35, "cores": 4}

:func:`normalize_spec` validates and fills defaults (rejecting unknown
fields so typos fail loudly); :func:`task_signature` produces the stable
string the cost model keys its cycle-count observations by.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.common.errors import ServiceProtocolError

#: Wire-accepted task kinds (mirrors :class:`SimTask.kind`).
TASK_KINDS = ("pair", "motivate", "group")

#: Workload suites accepted for ``pair`` specs.
SUITES = ("spec", "opencv")

_COMMON_FIELDS = {"kind", "policy", "scale", "max_cycles", "cores"}
_FIELDS_BY_KIND = {
    "pair": _COMMON_FIELDS | {"suite", "mem", "comp"},
    "motivate": _COMMON_FIELDS,
    "group": _COMMON_FIELDS | {"group"},
}

_DEFAULT_SCALE = {"pair": 0.35, "motivate": 0.5, "group": 0.35}
_DEFAULT_MAX_CYCLES = 3_000_000


def _reject(message: str) -> None:
    raise ServiceProtocolError(f"bad job spec: {message}")


def normalize_spec(spec: Dict[str, object]) -> Dict[str, object]:
    """Validate ``spec`` and return a canonical copy with defaults filled.

    Raises :class:`~repro.common.errors.ServiceProtocolError` on any
    malformed field — admission control rejects bad requests at the
    socket, long before a worker process sees them.
    """
    from repro.core.policies import POLICIES_BY_KEY

    if not isinstance(spec, dict):
        _reject(f"expected an object, got {type(spec).__name__}")
    kind = spec.get("kind", "pair")
    if kind not in TASK_KINDS:
        _reject(f"unknown kind {kind!r}; choose from {TASK_KINDS}")
    allowed = _FIELDS_BY_KIND[kind]
    unknown = sorted(set(spec) - allowed)
    if unknown:
        _reject(f"unknown field(s) {unknown} for kind {kind!r}")

    policy = spec.get("policy", "occamy")
    if policy not in POLICIES_BY_KEY:
        _reject(f"unknown policy {policy!r}; choose from {sorted(POLICIES_BY_KEY)}")

    scale = spec.get("scale", _DEFAULT_SCALE[kind])
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or not (
        0.0 < float(scale) <= 1.0
    ):
        _reject(f"scale must be in (0, 1], got {scale!r}")

    max_cycles = spec.get("max_cycles", _DEFAULT_MAX_CYCLES)
    if not isinstance(max_cycles, int) or isinstance(max_cycles, bool) or max_cycles <= 0:
        _reject(f"max_cycles must be a positive integer, got {max_cycles!r}")

    cores = spec.get("cores", 4 if kind == "group" else 2)
    if not isinstance(cores, int) or isinstance(cores, bool) or cores <= 0:
        _reject(f"cores must be a positive integer, got {cores!r}")

    normalized: Dict[str, object] = {
        "kind": kind,
        "policy": policy,
        "scale": float(scale),
        "max_cycles": max_cycles,
        "cores": cores,
    }
    if kind == "pair":
        suite = spec.get("suite")
        if suite not in SUITES:
            _reject(f"suite must be one of {SUITES}, got {suite!r}")
        for field in ("mem", "comp"):
            value = spec.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                _reject(f"{field} must be a workload id (int), got {value!r}")
        normalized.update(suite=suite, mem=spec["mem"], comp=spec["comp"])
    elif kind == "group":
        group = spec.get("group")
        if (
            not isinstance(group, (list, tuple))
            or not group
            or not all(isinstance(i, int) and not isinstance(i, bool) for i in group)
        ):
            _reject(f"group must be a non-empty list of workload ids, got {group!r}")
        normalized["group"] = [int(i) for i in group]
    return normalized


def build_task(spec: Dict[str, object]):
    """Materialise a (normalized) spec into a :class:`SimTask`."""
    from repro.analysis.parallel import SimTask
    from repro.common.config import experiment_config
    from repro.workloads.pairs import CoRunPair

    spec = normalize_spec(spec)
    config = experiment_config(num_cores=spec["cores"])
    common = dict(
        policy_key=spec["policy"],
        scale=spec["scale"],
        config=config,
        max_cycles=spec["max_cycles"],
    )
    if spec["kind"] == "pair":
        return SimTask(
            kind="pair",
            pair=CoRunPair(spec["suite"], spec["mem"], spec["comp"]),
            **common,
        )
    if spec["kind"] == "group":
        return SimTask(kind="group", group=tuple(spec["group"]), **common)
    return SimTask(kind="motivate", **common)


def task_signature(spec: Dict[str, object]) -> str:
    """Stable identity of a spec for cycle-cost bookkeeping.

    Unlike the result-cache key this does **not** hash compiled programs
    (no compilation needed), so the scheduler can predict a job's cost
    before the daemon ever materialises it.
    """
    return json.dumps(normalize_spec(spec), sort_keys=True, separators=(",", ":"))


def spec_for_pair(
    suite: str,
    mem: int,
    comp: int,
    policy: str = "occamy",
    scale: float = 0.35,
    max_cycles: Optional[int] = None,
) -> Dict[str, object]:
    """Convenience builder used by the CLI and tests."""
    spec: Dict[str, object] = {
        "kind": "pair",
        "suite": suite,
        "mem": mem,
        "comp": comp,
        "policy": policy,
        "scale": scale,
    }
    if max_cycles is not None:
        spec["max_cycles"] = max_cycles
    return normalize_spec(spec)


def spec_for_motivate(
    policy: str = "occamy", scale: float = 0.5, max_cycles: Optional[int] = None
) -> Dict[str, object]:
    spec: Dict[str, object] = {"kind": "motivate", "policy": policy, "scale": scale}
    if max_cycles is not None:
        spec["max_cycles"] = max_cycles
    return normalize_spec(spec)
