"""The simulation daemon: asyncio socket server over queue + worker pool.

One long-lived process owns the worker pool; any number of clients
connect over a local socket and speak the line-delimited JSON protocol
(:mod:`repro.service.protocol`).  The daemon's event loop does three
things: answer socket requests, pump the queue onto idle workers, and
turn pool supervision events into streamed job events.

Endpoints (``op`` field of each request):

``ping``
    Liveness probe; returns pid and uptime.
``submit``
    Admit one job spec.  Responds immediately with a ``queued`` event
    (or an explicit backpressure rejection); with ``"wait": true`` the
    connection then streams ``started`` / ``retrying`` / ``done`` /
    ``failed`` events until the job is terminal.  Duplicate submissions
    coalesce: if an identical spec (same content-hash key) is already
    queued or running, the new client attaches to the in-flight job and
    no second execution happens; if the persistent result cache already
    holds the key, the job completes instantly without touching the
    queue.
``watch``
    Attach to an existing job's event stream (replays the terminal event
    if the job already finished).
``result``
    Fetch a finished job's summary without streaming.
``status``
    Queue depth and snapshot, worker pids, scheduler name, counters.
``cancel``
    Remove a *queued* job; running jobs are not interrupted.
``drain``
    Stop admitting new jobs, wait until queued+running work finishes,
    then reply — the clean way to quiesce before shutdown.
``shutdown``
    Stop the daemon (optionally draining first).  Workers are stopped,
    the socket file is removed, the cost model is persisted.

Failure semantics: a worker *crash* or job *timeout* is retried with
exponential backoff up to ``max_retries`` before the job fails; a runner
*exception* (deterministic simulation error) fails immediately — it
would fail again.  A disconnected client only detaches its event stream;
the job keeps running and its result still lands in the persistent
cache.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.errors import AdmissionError, ServiceProtocolError
from repro.service import protocol
from repro.service.queue import CostModel, JobQueue, QueuedJob
from repro.service.specs import build_task, normalize_spec, task_signature
from repro.service.workers import PoolEvent, WorkerPool, run_cached_task

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Completed jobs kept in the registry for late ``result``/``watch`` calls.
FINISHED_KEEP = 256


@dataclass
class ServerOptions:
    """Everything tunable about one daemon instance."""

    address: Optional[str] = None
    workers: int = 2
    queue_depth: int = 64
    max_per_client: int = 16
    scheduler: str = "fifo"
    job_timeout: Optional[float] = 300.0
    max_retries: int = 2
    retry_backoff: float = 0.25
    recycle_after: Optional[int] = 64
    poll_interval: float = 0.02
    runner: object = run_cached_task
    cost_path: object = "default"


@dataclass
class ServiceJob:
    """Server-side state of one admitted job."""

    job_id: str
    key: str
    signature: str
    spec: Dict[str, object]
    task: object
    client: str
    state: str = QUEUED
    attempts: int = 0
    coalesced: int = 0
    cached: bool = False
    error: Optional[str] = None
    summary: Optional[Dict[str, object]] = None
    watchers: List[asyncio.Queue] = field(default_factory=list)
    queued_entry: Optional[QueuedJob] = None


class SimulationServer:
    """The daemon.  ``SimulationServer(opts).run()`` serves until shutdown."""

    def __init__(self, options: Optional[ServerOptions] = None, **overrides) -> None:
        options = options or ServerOptions(**overrides)
        self.options = options
        self.address = options.address or protocol.default_address()
        if options.cost_path == "default":
            from repro.analysis.result_cache import default_cache_dir

            cost_path = default_cache_dir() / "service_costs.json"
        else:
            cost_path = options.cost_path
        self.cost_model = CostModel(cost_path)
        self.queue = JobQueue(
            max_depth=options.queue_depth,
            max_per_client=options.max_per_client,
            scheduler=options.scheduler,
            cost_model=self.cost_model,
        )
        self.pool = WorkerPool(
            workers=options.workers,
            runner=options.runner,
            job_timeout=options.job_timeout,
            recycle_after=options.recycle_after,
        )
        self._jobs: Dict[str, ServiceJob] = {}
        self._inflight: Dict[str, str] = {}  # key -> job_id (non-terminal)
        self._finished_order: List[str] = []
        self._key_memo: Dict[str, str] = {}  # signature -> content-hash key
        self._next_id = 0
        self.draining = False
        self._stop_event: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at = time.monotonic()
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "executed": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "rejected": 0,
            "retries": 0,
        }

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> None:
        """Blocking entry point used by ``repro serve``."""
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        await self.start()
        try:
            await self.wait_closed()
        finally:
            await self.aclose()

    async def start(self) -> None:
        """Bind the socket, start workers and the pump task."""
        self.cost_model.load()
        self.pool.start()
        self._stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        self._loop = loop
        if protocol.is_tcp_address(self.address):
            host, port = protocol.split_tcp_address(self.address)
            self._server = await asyncio.start_server(self._handle_client, host, port)
        else:
            protocol.cleanup_socket(self.address)
            os.makedirs(os.path.dirname(self.address) or ".", exist_ok=True)
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.address
            )
        self._pump_task = loop.create_task(self._pump())

    async def wait_closed(self) -> None:
        assert self._stop_event is not None
        await self._stop_event.wait()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def stop_threadsafe(self) -> None:
        """Request a stop from outside the server's event loop (tests,
        signal handlers).  Safe to call repeatedly or before start."""
        loop = getattr(self, "_loop", None)
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.request_stop)

    async def aclose(self) -> None:
        """Tear down: stop pump, close socket, stop workers, persist costs."""
        self.request_stop()
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:  # pragma: no cover
                pass
            self._server = None
        if getattr(self, "_pump_task", None) is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except (asyncio.CancelledError, Exception):
                pass
            self._pump_task = None
        self.pool.stop()
        protocol.cleanup_socket(self.address)
        self.cost_model.save()

    # -- pump: queue -> workers, pool events -> job events ---------------------

    async def _pump(self) -> None:
        while True:
            progressed = self._pump_once()
            await asyncio.sleep(0 if progressed else self.options.poll_interval)

    def _pump_once(self) -> bool:
        progressed = False
        for event in self.pool.poll():
            self._on_pool_event(event)
            progressed = True
        now = time.monotonic()
        while self.pool.idle_count() > 0:
            queued = self.queue.pop_next(now)
            if queued is None:
                break
            self._start_job(queued)
            progressed = True
        return progressed

    def _start_job(self, queued: QueuedJob) -> None:
        job = self._jobs[queued.job_id]
        job.state = RUNNING
        job.attempts += 1
        pid = self.pool.dispatch(job.job_id, job.task)
        self.counters["executed"] += 1 if job.attempts == 1 else 0
        self._publish(
            job,
            {
                "event": "started",
                "job": job.job_id,
                "attempt": job.attempts,
                "worker": pid,
            },
        )

    def _on_pool_event(self, event: PoolEvent) -> None:
        job = self._jobs.get(event.job_id)
        if job is None or job.state in TERMINAL_STATES:  # pragma: no cover
            return
        if event.kind == "done":
            summary = protocol.summarize_result(event.result, key=job.key)
            self.cost_model.observe(job.signature, event.result.total_cycles)
            self._finish(job, DONE, summary=summary)
        elif event.kind == "error":
            # Deterministic runner failure: retrying cannot help.
            self._finish(job, FAILED, error=event.error, reason="error")
        else:  # crashed / timeout — transient, retry with backoff
            if job.attempts <= self.options.max_retries:
                self.counters["retries"] += 1
                backoff = self.options.retry_backoff * (2 ** (job.attempts - 1))
                job.state = QUEUED
                self.queue.requeue(
                    job.queued_entry, not_before=time.monotonic() + backoff
                )
                self._publish(
                    job,
                    {
                        "event": "retrying",
                        "job": job.job_id,
                        "attempt": job.attempts,
                        "reason": event.kind,
                        "error": event.error,
                        "backoff_ms": int(backoff * 1000),
                    },
                )
            else:
                self._finish(
                    job,
                    FAILED,
                    error=f"{event.error} (after {job.attempts} attempts)",
                    reason=event.kind,
                )

    def _finish(
        self,
        job: ServiceJob,
        state: str,
        summary: Optional[Dict[str, object]] = None,
        error: Optional[str] = None,
        reason: Optional[str] = None,
    ) -> None:
        job.state = state
        job.summary = summary
        job.error = error
        self._inflight.pop(job.key, None)
        self.counters["completed" if state == DONE else
                      "cancelled" if state == CANCELLED else "failed"] += 1
        self._publish(job, self._terminal_event(job, reason=reason))
        self._finished_order.append(job.job_id)
        while len(self._finished_order) > FINISHED_KEEP:
            stale = self._finished_order.pop(0)
            if self._jobs.get(stale) is not None and (
                self._jobs[stale].state in TERMINAL_STATES
            ):
                del self._jobs[stale]

    def _terminal_event(self, job: ServiceJob, reason: Optional[str] = None):
        if job.state == DONE:
            return {
                "event": "done",
                "job": job.job_id,
                "result": job.summary,
                "cached": job.cached,
                "attempts": job.attempts,
            }
        if job.state == CANCELLED:
            return {"event": "cancelled", "job": job.job_id}
        return {
            "event": "failed",
            "job": job.job_id,
            "error": job.error,
            "reason": reason,
            "attempts": job.attempts,
        }

    def _publish(self, job: ServiceJob, event: Dict[str, object]) -> None:
        for watcher in list(job.watchers):
            try:
                watcher.put_nowait(event)
            except asyncio.QueueFull:  # pragma: no cover - unbounded queues
                pass

    # -- submission ------------------------------------------------------------

    def _new_job_id(self) -> str:
        self._next_id += 1
        return f"j{self._next_id:05d}"

    def _running_for_client(self, client: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.state == RUNNING and job.client == client
        )

    def _admit(self, spec: Dict[str, object], client: str) -> ServiceJob:
        """Normalize, coalesce or admit one submission.

        Returns the (possibly pre-existing) job; raises
        :class:`AdmissionError` for backpressure and
        :class:`ServiceProtocolError` for malformed specs.
        """
        spec = normalize_spec(spec)
        self.counters["submitted"] += 1
        signature = task_signature(spec)
        task = build_task(spec)
        key = self._key_memo.get(signature)
        if key is None:
            from repro.analysis.parallel import task_key

            key = task_key(task)
            self._key_memo[signature] = key

        # 1. coalesce onto an identical in-flight job
        existing_id = self._inflight.get(key)
        if existing_id is not None:
            existing = self._jobs[existing_id]
            existing.coalesced += 1
            self.counters["coalesced"] += 1
            return existing

        # 2. instant completion from the persistent result cache
        from repro.analysis import result_cache

        cache = result_cache.default_cache()
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                self.counters["cache_hits"] += 1
                job = ServiceJob(
                    job_id=self._new_job_id(),
                    key=key,
                    signature=signature,
                    spec=spec,
                    task=task,
                    client=client,
                    cached=True,
                )
                self._jobs[job.job_id] = job
                self.cost_model.observe(signature, hit.total_cycles)
                self._finish(
                    job, DONE, summary=protocol.summarize_result(hit, key=key)
                )
                return job

        # 3. admission control + enqueue
        if self.draining:
            self.counters["rejected"] += 1
            raise AdmissionError("daemon is draining", reason="draining")
        job = ServiceJob(
            job_id=self._new_job_id(),
            key=key,
            signature=signature,
            spec=spec,
            task=task,
            client=client,
        )
        entry = QueuedJob(
            job_id=job.job_id,
            key=key,
            signature=signature,
            client=client,
            seq=self.queue.next_seq(),
            task=task,
        )
        try:
            self.queue.submit(
                entry, running_for_client=self._running_for_client(client)
            )
        except AdmissionError:
            self.counters["rejected"] += 1
            raise
        job.queued_entry = entry
        self._jobs[job.job_id] = job
        self._inflight[key] = job.job_id
        return job

    # -- connection handling ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                try:
                    message = protocol.decode_line(line)
                    await self._dispatch_op(message, writer)
                except ServiceProtocolError as exc:
                    if not await self._send(
                        writer, {"ok": False, "error": "protocol", "detail": str(exc)}
                    ):
                        break
                except ConnectionError:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover
                pass

    async def _send(self, writer: asyncio.StreamWriter, message) -> bool:
        """Write one frame; returns False when the client is gone."""
        try:
            writer.write(protocol.encode_message(message))
            await writer.drain()
            return True
        except (ConnectionError, RuntimeError, OSError):
            return False

    async def _dispatch_op(self, message, writer) -> None:
        op = message.get("op")
        if op == "ping":
            await self._send(
                writer,
                {
                    "ok": True,
                    "op": "ping",
                    "pid": os.getpid(),
                    "uptime_s": round(time.monotonic() - self._started_at, 3),
                },
            )
        elif op == "submit":
            await self._op_submit(message, writer)
        elif op == "watch":
            await self._op_watch(message, writer)
        elif op == "result":
            await self._op_result(message, writer)
        elif op == "status":
            await self._send(writer, self.status_payload())
        elif op == "cancel":
            await self._op_cancel(message, writer)
        elif op == "drain":
            await self._op_drain(writer)
        elif op == "shutdown":
            if message.get("drain"):
                await self._drain_jobs()
            await self._send(writer, {"ok": True, "op": "shutdown"})
            self.request_stop()
        else:
            raise ServiceProtocolError(f"unknown op {op!r}")

    async def _op_submit(self, message, writer) -> None:
        spec = message.get("spec")
        client = str(message.get("client") or "anonymous")
        wait = bool(message.get("wait", True))
        try:
            job = self._admit(spec, client)
        except AdmissionError as exc:
            await self._send(
                writer,
                {
                    "ok": False,
                    "error": exc.reason,
                    "detail": str(exc),
                    "queued": len(self.queue),
                    "retry_after_ms": 250,
                },
            )
            return
        watcher: Optional[asyncio.Queue] = None
        if wait and job.state not in TERMINAL_STATES:
            watcher = asyncio.Queue()
            job.watchers.append(watcher)
        ack = {
            "ok": True,
            "event": "queued",
            "job": job.job_id,
            "key": job.key,
            "state": job.state,
            "coalesced": job.coalesced > 0,
            "cached": job.cached,
        }
        if not await self._send(writer, ack):
            self._detach(job, watcher)
            return
        if not wait:
            return
        if job.state in TERMINAL_STATES:
            await self._send(writer, self._terminal_event(job))
            return
        await self._stream_events(job, watcher, writer)

    async def _op_watch(self, message, writer) -> None:
        job = self._jobs.get(str(message.get("job")))
        if job is None:
            await self._send(
                writer, {"ok": False, "error": "unknown-job", "job": message.get("job")}
            )
            return
        if job.state in TERMINAL_STATES:
            await self._send(writer, self._terminal_event(job))
            return
        watcher: asyncio.Queue = asyncio.Queue()
        job.watchers.append(watcher)
        if not await self._send(
            writer,
            {"ok": True, "event": "watching", "job": job.job_id, "state": job.state},
        ):
            self._detach(job, watcher)
            return
        await self._stream_events(job, watcher, writer)

    async def _stream_events(self, job: ServiceJob, watcher, writer) -> None:
        """Forward job events until terminal or the client disconnects.

        A disconnect only detaches this watcher — the job itself keeps
        running and its result still lands in the persistent cache.
        """
        try:
            while True:
                event = await watcher.get()
                if not await self._send(writer, event):
                    break
                if event.get("event") in ("done", "failed", "cancelled"):
                    break
        finally:
            self._detach(job, watcher)

    def _detach(self, job: ServiceJob, watcher) -> None:
        if watcher is not None and watcher in job.watchers:
            job.watchers.remove(watcher)

    async def _op_result(self, message, writer) -> None:
        job = self._jobs.get(str(message.get("job")))
        if job is None:
            await self._send(
                writer, {"ok": False, "error": "unknown-job", "job": message.get("job")}
            )
        elif job.state not in TERMINAL_STATES:
            await self._send(
                writer,
                {"ok": True, "job": job.job_id, "state": job.state, "result": None},
            )
        else:
            payload = dict(self._terminal_event(job))
            payload.update({"ok": True, "state": job.state})
            await self._send(writer, payload)

    async def _op_cancel(self, message, writer) -> None:
        job = self._jobs.get(str(message.get("job")))
        if job is None:
            await self._send(
                writer, {"ok": False, "error": "unknown-job", "job": message.get("job")}
            )
            return
        if job.state == QUEUED and self.queue.remove(job.job_id) is not None:
            self._finish(job, CANCELLED)
            await self._send(writer, {"ok": True, "job": job.job_id, "state": CANCELLED})
        else:
            await self._send(
                writer,
                {
                    "ok": False,
                    "error": "not-cancellable",
                    "job": job.job_id,
                    "state": job.state,
                },
            )

    async def _op_drain(self, writer) -> None:
        drained = await self._drain_jobs()
        await self._send(writer, {"ok": True, "op": "drain", "drained": drained})

    async def _drain_jobs(self) -> int:
        """Reject new work, then wait for queued+running jobs to finish."""
        self.draining = True
        drained = len(self.queue) + self.pool.busy_count()
        while len(self.queue) + self.pool.busy_count() > 0:
            # retry-fenced jobs sit in the queue, so they count as pending
            await asyncio.sleep(self.options.poll_interval)
        return drained

    # -- status ----------------------------------------------------------------

    def status_payload(self) -> Dict[str, object]:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "ok": True,
            "op": "status",
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "address": self.address,
            "draining": self.draining,
            "scheduler": self.queue.scheduler.name,
            "queue": {
                "depth": len(self.queue),
                "max_depth": self.queue.max_depth,
                "max_per_client": self.queue.max_per_client,
                "snapshot": self.queue.snapshot(),
            },
            "workers": {
                "size": self.pool.size,
                "busy": self.pool.busy_count(),
                "idle": self.pool.idle_count(),
                "pids": self.pool.worker_pids(),
                "recycled": self.pool.recycled,
                "job_timeout_s": self.options.job_timeout,
            },
            "jobs_by_state": states,
            "counters": dict(self.counters),
            "cost_model_entries": len(self.cost_model),
        }
