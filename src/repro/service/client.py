"""Blocking client for the simulation daemon.

Deliberately stdlib-``socket`` only (no asyncio): the CLI, tests and any
shell script can hold one connection, send line-delimited JSON requests
and read framed responses.  One :class:`ServiceClient` wraps one
connection; a client submitting with ``wait=True`` streams job events on
that connection until the job is terminal.

Error mapping: admission rejections raise
:class:`~repro.common.errors.AdmissionError` (with the daemon's
machine-readable ``reason``), a failed job raises
:class:`~repro.common.errors.JobFailedError`, an unreachable daemon
raises :class:`~repro.common.errors.ServiceUnavailableError`, and any
malformed frame raises :class:`~repro.common.errors.ServiceProtocolError`.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Dict, Optional

from repro.common.errors import (
    AdmissionError,
    JobFailedError,
    ServiceProtocolError,
    ServiceUnavailableError,
)
from repro.service import protocol


def _connect(address: str, timeout: Optional[float]) -> socket.socket:
    try:
        if protocol.is_tcp_address(address):
            host, port = protocol.split_tcp_address(address)
            return socket.create_connection((host, port), timeout=timeout)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
        return sock
    except OSError as exc:
        raise ServiceUnavailableError(
            f"cannot reach simulation daemon at {address}: {exc}"
        ) from None


def wait_for_server(
    address: Optional[str] = None,
    deadline_s: float = 10.0,
    interval_s: float = 0.05,
) -> None:
    """Block until the daemon answers ``ping`` (or raise after deadline)."""
    address = address or protocol.default_address()
    deadline = time.monotonic() + deadline_s
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(address, timeout=deadline_s) as client:
                client.ping()
                return
        except ServiceUnavailableError as exc:
            last = exc
            time.sleep(interval_s)
    raise ServiceUnavailableError(
        f"daemon at {address} not reachable within {deadline_s:.1f}s: {last}"
    )


class ServiceClient:
    """One connection to the daemon.  Usable as a context manager."""

    def __init__(
        self, address: Optional[str] = None, timeout: Optional[float] = 60.0
    ) -> None:
        self.address = address or protocol.default_address()
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._buffer = b""

    # -- plumbing --------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = _connect(self.address, self.timeout)
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def send(self, message: Dict[str, object]) -> None:
        self.connect()
        try:
            self._sock.sendall(protocol.encode_message(message))
        except OSError as exc:
            raise ServiceUnavailableError(f"daemon connection lost: {exc}") from None

    def read_message(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """Read one framed response (blocking, honouring ``timeout``)."""
        self.connect()
        if timeout is not None:
            self._sock.settimeout(timeout)
        while b"\n" not in self._buffer:
            if len(self._buffer) > protocol.MAX_LINE_BYTES:
                raise ServiceProtocolError("oversized frame from daemon")
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise ServiceUnavailableError(
                    f"daemon did not respond within {timeout or self.timeout}s"
                ) from None
            except OSError as exc:
                raise ServiceUnavailableError(
                    f"daemon connection lost: {exc}"
                ) from None
            if not chunk:
                raise ServiceUnavailableError("daemon closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return protocol.decode_line(line)

    def request(self, op: str, **fields) -> Dict[str, object]:
        """One request → one response."""
        message = {"op": op}
        message.update(fields)
        self.send(message)
        return self.read_message()

    # -- endpoints -------------------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def status(self) -> Dict[str, object]:
        return self.request("status")

    def drain(self, timeout: Optional[float] = None) -> Dict[str, object]:
        self.send({"op": "drain"})
        return self.read_message(timeout=timeout)

    def shutdown(self, drain: bool = False) -> Dict[str, object]:
        return self.request("shutdown", drain=drain)

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self.request("cancel", job=job_id)

    def result(self, job_id: str) -> Dict[str, object]:
        return self.request("result", job=job_id)

    def submit(
        self,
        spec: Dict[str, object],
        client: str = "cli",
        wait: bool = True,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        timeout: Optional[float] = None,
        raise_on_failure: bool = True,
    ) -> Dict[str, object]:
        """Submit one job spec; returns the final event.

        With ``wait=True`` (default) streams events — each passed to
        ``on_event`` — and returns the terminal ``done``/``failed``
        event.  With ``wait=False`` returns the ``queued``
        acknowledgement immediately.  Backpressure rejections raise
        :class:`AdmissionError`; a failed job raises
        :class:`JobFailedError` unless ``raise_on_failure=False``.
        """
        self.send({"op": "submit", "spec": spec, "client": client, "wait": wait})
        ack = self.read_message(timeout=timeout)
        if not ack.get("ok"):
            reason = str(ack.get("error", "rejected"))
            detail = str(ack.get("detail", ack))
            if reason == "protocol":
                raise ServiceProtocolError(detail)
            raise AdmissionError(detail, reason=reason)
        if on_event is not None:
            on_event(ack)
        if not wait:
            return ack
        event = ack
        while event.get("event") not in ("done", "failed", "cancelled"):
            event = self.read_message(timeout=timeout)
            if on_event is not None:
                on_event(event)
        if raise_on_failure and event.get("event") == "failed":
            raise JobFailedError(
                f"job {event.get('job')} failed after "
                f"{event.get('attempts')} attempt(s): {event.get('error')}"
            )
        return event

    def watch(
        self,
        job_id: str,
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """Attach to a job's event stream; returns its terminal event."""
        self.send({"op": "watch", "job": job_id})
        event = self.read_message(timeout=timeout)
        if not event.get("ok", True) and event.get("error"):
            raise ServiceProtocolError(str(event))
        while event.get("event") not in ("done", "failed", "cancelled"):
            event = self.read_message(timeout=timeout)
            if on_event is not None:
                on_event(event)
        return event
