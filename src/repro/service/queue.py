"""Job queue: admission control plus pluggable scheduling policies.

This is the service-level analogue of the co-processor's ``LaneMgr``:
many clients compete for a bounded pool of workers, and *which job runs
next* is an explicit, swappable policy rather than an accident of arrival
order — mirroring how the paper makes lane arbitration a first-class
mechanism (§5) and how co-run allocation-policy work (Navarro et al.)
treats thread-to-core mapping as a pluggable family.

Admission control is strict and explicit:

* **bounded depth** — beyond ``max_depth`` queued jobs the submit is
  rejected with a ``queue-full`` :class:`AdmissionError` (the server turns
  this into a backpressure response; nothing buffers without bound);
* **per-client quota** — one client cannot occupy more than
  ``max_per_client`` queued+running slots (``client-quota`` rejection),
  so a chatty client cannot starve the rest regardless of scheduler.

Schedulers (``SCHEDULERS``):

``fifo``
    Arrival order (lowest sequence number).
``spjf``
    Shortest-predicted-job-first: predicted cost is the cycle count the
    :class:`CostModel` has recorded for previous runs of the same spec
    signature.  A signature never observed before is estimated with the
    ECM analytical model (:func:`repro.analysis.ecm.predict_spec_cycles`)
    instead of an infinite cost, so a cold fleet still runs shortest-
    job-first rather than degrading to FIFO; only signatures the model
    cannot parse (opaque/test signatures) keep the infinite-estimate
    FIFO fallback, and ``not_before`` retry fences plus FIFO tie-breaks
    keep every job from starving either way.
``fair``
    Fair-share round-robin across clients: the client with the fewest
    scheduled jobs this session goes first; FIFO within a client.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.common.errors import AdmissionError, ConfigurationError


def _valid_cost(value: object) -> bool:
    """True for a usable cycle count: a finite, non-negative real number.

    ``bool`` is an ``int`` subclass, so ``isinstance(x, (int, float))``
    alone would accept ``true``/``false`` from a hand-edited JSON file;
    non-finite floats are worse — a single ``NaN`` loaded from a corrupt
    shared ``service_costs.json`` poisons every spjf ``min`` comparison
    it participates in, silently randomising the schedule.
    """
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value >= 0
    )

#: Default bound on queued (not yet running) jobs.
DEFAULT_MAX_DEPTH = 64

#: Default bound on one client's queued+running jobs.
DEFAULT_MAX_PER_CLIENT = 16


@dataclass
class QueuedJob:
    """One admitted, not-yet-dispatched job."""

    job_id: str
    key: str
    signature: str
    client: str
    seq: int
    task: object = None
    #: Monotonic time before which the scheduler must not pick this job
    #: (retry backoff fence; 0 = immediately eligible).
    not_before: float = 0.0
    #: Predicted cost in simulated cycles (None = no observation yet).
    predicted_cycles: Optional[float] = None


# --- cost model ---------------------------------------------------------------


class CostModel:
    """Cycle-count observations keyed by spec signature.

    Backs the ``spjf`` scheduler: every completed job reports its
    ``total_cycles`` and later submissions of the same signature are
    predicted at the exponential moving average of those observations.
    Signatures with no observation yet fall back to the ECM analytical
    estimate (see :meth:`predict`) unless ``prior=False``.  Optionally
    persisted (atomically, best-effort) as JSON next to the result cache
    so predictions survive daemon restarts; corrupt entries — booleans,
    ``NaN``/``Infinity``, negatives — are rejected on load and on merge
    and are never written back (see :func:`_valid_cost`).
    """

    #: EMA smoothing: new observation weight.
    ALPHA = 0.5

    def __init__(self, path: Optional[os.PathLike] = None, prior: bool = True) -> None:
        self.path = Path(path) if path else None
        self._costs: Dict[str, float] = {}
        self._loaded = False
        self._prior_enabled = prior

    def load(self) -> None:
        """Read persisted observations; any unreadable file is ignored."""
        self._loaded = True
        if self.path is None:
            return
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if isinstance(data, dict):
            self._costs.update(
                {
                    str(sig): float(cost)
                    for sig, cost in data.items()
                    if _valid_cost(cost)
                }
            )

    def save(self, merge: bool = True) -> bool:
        """Persist observations atomically; returns False on any failure.

        The write is tempfile + ``os.replace`` so a crash mid-write can
        never leave a torn file, and with ``merge=True`` (the default)
        signatures another daemon persisted since our load are folded in
        rather than clobbered — N fleet daemons sharing one
        ``service_costs.json`` each keep their own observations for
        conflicting signatures but never erase a sibling's.  In-memory
        state is left untouched either way.
        """
        if self.path is None:
            return False
        entries = dict(self._costs)
        tmp_name = None
        try:
            if merge:
                try:
                    with open(self.path, "r", encoding="utf-8") as handle:
                        on_disk = json.load(handle)
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    on_disk = None
                if isinstance(on_disk, dict):
                    for sig, cost in on_disk.items():
                        if _valid_cost(cost):
                            entries.setdefault(str(sig), float(cost))
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.path.parent, prefix=".costs-", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entries, handle)
            os.replace(tmp_name, self.path)
            return True
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return False

    def observe(self, signature: str, cycles: float) -> None:
        """Fold one measured cycle count into the signature's EMA.

        Invalid observations (bool, non-finite, negative) are dropped:
        persisting one would poison the shared cost file for every
        daemon that later merges it.
        """
        if not _valid_cost(cycles):
            return
        if not self._loaded:
            self.load()
        previous = self._costs.get(signature)
        if previous is None:
            self._costs[signature] = float(cycles)
        else:
            self._costs[signature] = (
                self.ALPHA * float(cycles) + (1.0 - self.ALPHA) * previous
            )

    def predict(self, signature: str) -> Optional[float]:
        """Predicted cycles: the observed EMA, else the ECM prior.

        The prior (lazy-imported so queue construction never pays for
        the analysis stack) only produces estimates for signatures that
        parse as job specs; anything else returns ``None`` and keeps the
        infinite-estimate FIFO fallback.
        """
        if not self._loaded:
            self.load()
        observed = self._costs.get(signature)
        if observed is not None:
            return observed
        if not self._prior_enabled:
            return None
        from repro.analysis.ecm import predict_spec_cycles

        return predict_spec_cycles(signature)

    def observed(self, signature: str) -> Optional[float]:
        """The measured EMA alone (no analytical prior), if any."""
        if not self._loaded:
            self.load()
        return self._costs.get(signature)

    def __len__(self) -> int:
        if not self._loaded:
            self.load()
        return len(self._costs)


# --- scheduling policies ------------------------------------------------------


class Scheduler:
    """Picks the next job to dispatch from the eligible set."""

    name = "base"

    def select(self, eligible: List[QueuedJob]) -> QueuedJob:
        raise NotImplementedError

    def on_scheduled(self, job: QueuedJob) -> None:
        """Hook: called when ``job`` is handed to a worker."""


class FifoScheduler(Scheduler):
    """Strict arrival order."""

    name = "fifo"

    def select(self, eligible: List[QueuedJob]) -> QueuedJob:
        return min(eligible, key=lambda job: job.seq)


class ShortestPredictedScheduler(Scheduler):
    """Shortest-predicted-job-first, FIFO among unknown-cost jobs.

    Known-cost jobs rank by predicted simulated cycles; jobs with no
    observation rank behind all predicted ones (infinite estimate) in
    arrival order.  Ties always break by sequence number so the order is
    deterministic.
    """

    name = "spjf"

    def select(self, eligible: List[QueuedJob]) -> QueuedJob:
        return min(
            eligible,
            key=lambda job: (
                job.predicted_cycles
                if job.predicted_cycles is not None
                else float("inf"),
                job.seq,
            ),
        )


class FairShareScheduler(Scheduler):
    """Round-robin across clients, FIFO within a client.

    The client with the fewest jobs scheduled so far goes first; sequence
    numbers break ties, so with a single client this degrades to FIFO.
    """

    name = "fair"

    def __init__(self) -> None:
        self._served: Dict[str, int] = {}

    def select(self, eligible: List[QueuedJob]) -> QueuedJob:
        return min(
            eligible,
            key=lambda job: (self._served.get(job.client, 0), job.seq),
        )

    def on_scheduled(self, job: QueuedJob) -> None:
        self._served[job.client] = self._served.get(job.client, 0) + 1


SCHEDULERS = {
    FifoScheduler.name: FifoScheduler,
    ShortestPredictedScheduler.name: ShortestPredictedScheduler,
    FairShareScheduler.name: FairShareScheduler,
}

SCHEDULER_NAMES = tuple(sorted(SCHEDULERS))


def make_scheduler(name: str) -> Scheduler:
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; choose from {SCHEDULER_NAMES}"
        ) from None
    return factory()


# --- the queue ----------------------------------------------------------------


@dataclass
class QueueStats:
    depth: int
    max_depth: int
    per_client: Dict[str, int] = field(default_factory=dict)
    admitted: int = 0
    rejected_full: int = 0
    rejected_quota: int = 0


class JobQueue:
    """Bounded, policy-scheduled job queue with explicit backpressure.

    ``running_counts`` (per-client in-flight jobs) is supplied by the
    server on submit so the per-client quota covers queued *and* running
    work; the queue itself only tracks queued jobs.
    """

    def __init__(
        self,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_per_client: int = DEFAULT_MAX_PER_CLIENT,
        scheduler: str = "fifo",
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if max_depth <= 0:
            raise ConfigurationError(f"max_depth must be positive, got {max_depth}")
        if max_per_client <= 0:
            raise ConfigurationError(
                f"max_per_client must be positive, got {max_per_client}"
            )
        self.max_depth = max_depth
        self.max_per_client = max_per_client
        self.scheduler = (
            scheduler if isinstance(scheduler, Scheduler) else make_scheduler(scheduler)
        )
        self.cost_model = cost_model or CostModel()
        self._jobs: List[QueuedJob] = []
        self._seq = 0
        self.stats = QueueStats(depth=0, max_depth=max_depth)

    # -- admission -------------------------------------------------------------

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def submit(
        self,
        job: QueuedJob,
        running_for_client: int = 0,
    ) -> None:
        """Admit ``job`` or raise :class:`AdmissionError` (backpressure).

        ``running_for_client`` is the submitting client's current
        in-flight (dispatched, unfinished) job count.
        """
        if len(self._jobs) >= self.max_depth:
            self.stats.rejected_full += 1
            raise AdmissionError(
                f"queue full ({len(self._jobs)}/{self.max_depth} jobs queued); "
                f"retry after a job completes",
                reason="queue-full",
            )
        queued_for_client = sum(1 for j in self._jobs if j.client == job.client)
        if queued_for_client + running_for_client >= self.max_per_client:
            self.stats.rejected_quota += 1
            raise AdmissionError(
                f"client {job.client!r} at quota "
                f"({queued_for_client} queued + {running_for_client} running "
                f">= {self.max_per_client})",
                reason="client-quota",
            )
        if job.predicted_cycles is None:
            job.predicted_cycles = self.cost_model.predict(job.signature)
        self._jobs.append(job)
        self.stats.admitted += 1
        self.stats.depth = len(self._jobs)

    def requeue(self, job: QueuedJob, not_before: float = 0.0) -> None:
        """Put a previously-popped job back (retry path).

        Bypasses admission control: the job was already admitted once and
        retries are bounded by the server's ``max_retries``, so requeueing
        can never grow the queue without bound.
        """
        job.not_before = not_before
        self._jobs.append(job)
        self.stats.depth = len(self._jobs)

    # -- scheduling ------------------------------------------------------------

    def pop_next(self, now: float) -> Optional[QueuedJob]:
        """Remove and return the next job to run, or ``None`` if none is
        eligible (empty queue or all jobs fenced behind retry backoff)."""
        eligible = [job for job in self._jobs if job.not_before <= now]
        if not eligible:
            return None
        job = self.scheduler.select(eligible)
        self._jobs.remove(job)
        self.scheduler.on_scheduled(job)
        self.stats.depth = len(self._jobs)
        return job

    def remove(self, job_id: str) -> Optional[QueuedJob]:
        """Remove a queued job by id (cancellation); None if not queued."""
        for job in self._jobs:
            if job.job_id == job_id:
                self._jobs.remove(job)
                self.stats.depth = len(self._jobs)
                return job
        return None

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-safe view of the queued jobs in arrival order."""
        return [
            {
                "job": job.job_id,
                "client": job.client,
                "seq": job.seq,
                "predicted_cycles": job.predicted_cycles,
                "not_before": job.not_before or None,
            }
            for job in sorted(self._jobs, key=lambda j: j.seq)
        ]
