"""A textual assembler/disassembler for the mini ISA.

The syntax mirrors the listings in the paper (Fig. 9).  One instruction
per line; ``;`` or ``//`` start comments; labels end with ``:``.

::

    // the Fig. 9 retry loop
    L1:
        msr <VL>, X2
        mrs X3, <status>
        b.ne X3, #1, L1
        halt

Vector syntax::

    whilelt p0, Xi, Xn
    ld1w z1, [a, Xi], p0
    fadd z3, z1, z2, p0
    fmla z4, z1, z2, z3        // fused multiply-add (no predicate)
    st1w z3, [c, Xi], p0
    faddv Xr, z4
    addvl Xi, Xi

Operands: scalar registers are bare identifiers (``X0``, ``Xi``),
immediates use ``#`` (``#3``, ``#0.5``), vector registers ``z<n>``,
predicates ``p<n>``, system registers the paper's ``<...>`` notation.
``msr <OI>, #(0.5, 0.25)`` writes an operational-intensity pair.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.common.errors import AssemblyError
from repro.isa.instructions import (
    MRS,
    MSR,
    AddVL,
    Branch,
    Halt,
    Instruction,
    ScalarOp,
    VHReduce,
    VLoad,
    VOp,
    VStore,
    WhileLT,
    BRANCH_CONDS,
    HREDUCE_OPS,
    SCALAR_OPS,
    VECTOR_OPS,
)
from repro.isa.operands import Imm, PReg, ScalarRef, VReg
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import OIValue, SystemRegister

_SYSREGS = {reg.value: reg for reg in SystemRegister}
_OI_PAIR = re.compile(r"^\(\s*([-\d.eE+]+)\s*,\s*([-\d.eE+]+)\s*\)$")
_MEM_OPERAND = re.compile(r"^\[\s*(\w+)\s*,\s*(\w+)\s*\]$")


def _strip_comment(line: str) -> str:
    for marker in (";", "//"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    """Split on commas not nested in brackets/parens."""
    parts: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


def _number(text: str) -> float:
    value = float(text)
    return int(value) if value.is_integer() else value


def _imm(text: str) -> Imm:
    body = text[1:].strip()
    pair = _OI_PAIR.match(body)
    if pair:
        return Imm(OIValue(float(pair.group(1)), float(pair.group(2))))
    try:
        return Imm(_number(body))
    except ValueError as exc:
        raise AssemblyError(f"bad immediate {text!r}") from exc


def _scalar_operand(text: str) -> object:
    if text.startswith("#"):
        return _imm(text)
    return text


def _vector_operand(text: str) -> object:
    if text.startswith("#"):
        return _imm(text)
    if re.fullmatch(r"z\d+", text):
        return VReg(text)
    return ScalarRef(text)


def _sysreg(text: str) -> SystemRegister:
    try:
        return _SYSREGS[text]
    except KeyError as exc:
        raise AssemblyError(f"unknown system register {text!r}") from exc


def _pred(operands: List[str], min_args: int) -> Tuple[List[str], Optional[PReg]]:
    """Pop an optional trailing predicate operand."""
    if len(operands) > min_args and re.fullmatch(r"p\d+", operands[-1]):
        return operands[:-1], PReg(operands[-1])
    return operands, None


def parse_line(line: str) -> Optional[Instruction]:
    """Parse one line; returns None for blank lines (labels are handled by
    :func:`assemble`)."""
    text = _strip_comment(line)
    if not text:
        return None
    mnemonic, _, rest = text.partition(" ")
    mnemonic = mnemonic.lower()
    operands = _split_operands(rest) if rest.strip() else []

    if mnemonic == "halt":
        return Halt()
    if mnemonic == "addvl":
        if len(operands) != 2:
            raise AssemblyError(f"addvl takes 2 operands: {line!r}")
        return AddVL(operands[0], operands[1])
    if mnemonic == "b":
        if len(operands) != 1:
            raise AssemblyError(f"b takes a label: {line!r}")
        return Branch("al", operands[0])
    if mnemonic.startswith("b."):
        cond = mnemonic[2:]
        if cond not in BRANCH_CONDS:
            raise AssemblyError(f"unknown condition {cond!r}")
        if len(operands) != 3:
            raise AssemblyError(f"b.{cond} takes src1, src2, label: {line!r}")
        return Branch(cond, operands[2], _scalar_operand(operands[0]), _scalar_operand(operands[1]))
    if mnemonic == "msr":
        if len(operands) != 2:
            raise AssemblyError(f"msr takes 2 operands: {line!r}")
        return MSR(_sysreg(operands[0]), _scalar_operand(operands[1]))
    if mnemonic == "mrs":
        if len(operands) != 2:
            raise AssemblyError(f"mrs takes 2 operands: {line!r}")
        return MRS(operands[0], _sysreg(operands[1]))
    if mnemonic == "whilelt":
        if len(operands) != 3:
            raise AssemblyError(f"whilelt takes 3 operands: {line!r}")
        return WhileLT(PReg(operands[0]), operands[1], operands[2])
    if mnemonic in ("ld1w", "st1w"):
        operands, pred = _pred(operands, 2)
        if len(operands) != 2:
            raise AssemblyError(f"{mnemonic} takes reg, [array, index]: {line!r}")
        memory = _MEM_OPERAND.match(operands[1])
        if not memory:
            raise AssemblyError(f"bad memory operand {operands[1]!r}")
        array, index = memory.group(1), memory.group(2)
        reg = VReg(operands[0])
        if mnemonic == "ld1w":
            return VLoad(reg, array, index, pred=pred)
        return VStore(reg, array, index, pred=pred)
    if mnemonic.startswith("f") and mnemonic.endswith("v") and mnemonic[1:-1] in HREDUCE_OPS:
        operands, pred = _pred(operands, 2)
        if len(operands) != 2:
            raise AssemblyError(f"{mnemonic} takes Xdst, zsrc: {line!r}")
        return VHReduce(mnemonic[1:-1], operands[0], VReg(operands[1]), pred=pred)
    if mnemonic.startswith("f") and mnemonic[1:] in VECTOR_OPS:
        op = mnemonic[1:]
        operands, pred = _pred(operands, 2)
        if len(operands) < 2:
            raise AssemblyError(f"{mnemonic} needs a destination and sources")
        dst = VReg(operands[0])
        srcs = tuple(_vector_operand(op_text) for op_text in operands[1:])
        return VOp(op, dst, srcs, pred=pred)
    if mnemonic in SCALAR_OPS:
        if len(operands) < 2:
            raise AssemblyError(f"{mnemonic} needs a destination and sources")
        return ScalarOp(
            mnemonic, operands[0], tuple(_scalar_operand(t) for t in operands[1:])
        )
    raise AssemblyError(f"unknown mnemonic {mnemonic!r} in {line!r}")


def assemble(source: str, name: str = "asm") -> Program:
    """Assemble a multi-line source string into a :class:`Program`."""
    builder = ProgramBuilder(name)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw)
        if not text:
            continue
        while True:
            match = re.match(r"^([A-Za-z_.][\w.]*):\s*(.*)$", text)
            if not match:
                break
            builder.label(match.group(1))
            text = match.group(2)
        if not text:
            continue
        try:
            instruction = parse_line(text)
        except AssemblyError as exc:
            raise AssemblyError(f"{name}:{lineno}: {exc}") from exc
        if instruction is not None:
            builder.emit(instruction)
    return builder.build()


def disassemble(program: Program) -> str:
    """Round-trippable textual form of ``program``."""
    return program.disassemble()
