"""The EM-SIMD instruction set (paper §3.2) plus the mini host ISA.

Three instruction families exist, mirroring Table 2 of the paper:

* **Scalar** — a small ARM-flavoured register machine (``ScalarOp``,
  ``Branch``, ``AddVL``...) interpreted by the scalar cores;
* **SVE** — vector-length-agnostic vector compute and load/store
  instructions (``VOp``, ``VLoad``, ``VStore``, ``WhileLT``...) executed by
  the shared co-processor;
* **EM-SIMD** — ``MSR``/``MRS`` accesses to the five dedicated registers of
  Table 1 (``<OI>``, ``<decision>``, ``<VL>``, ``<status>``, ``<AL>``).
"""

from repro.isa.assembler import assemble, disassemble, parse_line
from repro.isa.instructions import (
    MRS,
    MSR,
    AddVL,
    Branch,
    Halt,
    Instruction,
    InstructionClass,
    Label,
    ScalarOp,
    VHReduce,
    VLoad,
    VOp,
    VStore,
    WhileLT,
)
from repro.isa.operands import Imm, PReg, ScalarRef, VReg, operand_repr
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import (
    AL,
    DECISION,
    OI,
    STATUS,
    VL,
    OIValue,
    SystemRegister,
)

__all__ = [
    "AL",
    "AddVL",
    "Branch",
    "DECISION",
    "Halt",
    "Imm",
    "Instruction",
    "InstructionClass",
    "Label",
    "MRS",
    "MSR",
    "OI",
    "OIValue",
    "PReg",
    "Program",
    "ProgramBuilder",
    "STATUS",
    "ScalarOp",
    "ScalarRef",
    "SystemRegister",
    "VHReduce",
    "VL",
    "VLoad",
    "VOp",
    "VReg",
    "VStore",
    "WhileLT",
    "assemble",
    "disassemble",
    "operand_repr",
    "parse_line",
]
