"""Operand kinds shared by scalar and vector instructions.

Scalar registers are plain strings (``"X0"``...), wrapped in
:class:`ScalarRef` when used as a vector-operand broadcast.  Vector and
predicate registers get small value types so instructions can be matched on
operand kind, and immediates are wrapped in :class:`Imm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class VReg:
    """An architectural vector register ``z0``..``z31``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name.startswith("z"):
            raise ValueError(f"vector registers are named z<N>, got {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PReg:
    """An architectural predicate register ``p0``..``p15``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name.startswith("p"):
            raise ValueError(f"predicate registers are named p<N>, got {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ScalarRef:
    """A scalar register used as a vector operand (broadcast splat)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate operand; the value may be a number or an OI pair."""

    value: object

    def __str__(self) -> str:
        return f"#{self.value}"


#: Anything acceptable as a vector-instruction source operand.
VectorOperand = Union[VReg, ScalarRef, Imm]

#: Anything acceptable as a scalar-instruction source operand.
ScalarOperand = Union[str, Imm]


def operand_repr(operand: object) -> str:
    """Uniform textual form of any operand (used by disassembly)."""
    return str(operand)
