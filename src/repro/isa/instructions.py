"""Instruction definitions for the scalar, SVE and EM-SIMD families.

Instructions are immutable descriptions; *dynamic* state (captured scalar
operands, issue/completion cycles) lives in the co-processor's dynamic
instruction records, never here, so one :class:`Program` can be executed on
many cores/policies concurrently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.isa.operands import Imm, PReg, ScalarRef, VReg, VectorOperand
from repro.isa.registers import SystemRegister

#: Scalar ALU operations understood by the interpreter.
SCALAR_OPS = frozenset(
    {"mov", "add", "sub", "mul", "div", "rem", "and", "or", "min", "max", "lsl", "lsr"}
)

#: Branch conditions (``al`` = unconditional).
BRANCH_CONDS = frozenset({"al", "eq", "ne", "lt", "le", "gt", "ge"})

#: Vector compute operations -> (FLOPs per element, is long-latency).
VECTOR_OPS = {
    "add": (1, False),
    "sub": (1, False),
    "mul": (1, False),
    "div": (1, True),
    "sqrt": (1, True),
    "fma": (2, False),
    "min": (1, False),
    "max": (1, False),
    "abs": (1, False),
    "neg": (1, False),
    "dup": (0, False),
    "mov": (0, False),
    "cmpgt": (1, False),
    "sel": (0, False),
}

#: Horizontal reductions.
HREDUCE_OPS = frozenset({"add", "max", "min"})


class InstructionClass(enum.Enum):
    """The three instruction families of the paper's Table 2."""

    SCALAR = "scalar"
    SVE_COMPUTE = "sve-compute"
    SVE_LDST = "sve-ldst"
    EM_SIMD = "em-simd"


@dataclass(frozen=True)
class Instruction:
    """Base class; every instruction knows its family for ordering rules."""

    @property
    def iclass(self) -> InstructionClass:
        raise NotImplementedError

    @property
    def is_vector(self) -> bool:
        """True for instructions transmitted to the co-processor."""
        return self.iclass in (
            InstructionClass.SVE_COMPUTE,
            InstructionClass.SVE_LDST,
            InstructionClass.EM_SIMD,
        )

    def text(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.text()


@dataclass(frozen=True)
class Label(Instruction):
    """A branch target; occupies no pipeline resources."""

    name: str

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SCALAR

    def text(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class ScalarOp(Instruction):
    """``dst = op(srcs...)`` on the scalar register file.

    ``mov`` takes one source; every other op takes two.  Sources are scalar
    register names or :class:`Imm`.
    """

    op: str
    dst: str
    srcs: Tuple[object, ...]

    def __post_init__(self) -> None:
        if self.op not in SCALAR_OPS:
            raise ValueError(f"unknown scalar op {self.op!r}")
        expected = 1 if self.op == "mov" else 2
        if len(self.srcs) != expected:
            raise ValueError(f"{self.op} takes {expected} source(s)")

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SCALAR

    def text(self) -> str:
        operands = ", ".join(str(s) for s in self.srcs)
        return f"{self.op} {self.dst}, {operands}"


@dataclass(frozen=True)
class AddVL(Instruction):
    """``dst = src + <VL>-in-elements`` (SVE ``incw``-style).

    Reads the core's *current* configured vector length, converts it to
    elements of ``elem_bytes`` and adds it to ``src``.  This is how
    vectorized loops advance their induction variable under a vector length
    that may change between iterations.
    """

    dst: str
    src: str
    elem_bytes: int = 4

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SCALAR

    def text(self) -> str:
        return f"addvl {self.dst}, {self.src} (x{self.elem_bytes}B)"


@dataclass(frozen=True)
class Branch(Instruction):
    """Conditional or unconditional branch to a label."""

    cond: str
    target: str
    src1: Optional[object] = None
    src2: Optional[object] = None

    def __post_init__(self) -> None:
        if self.cond not in BRANCH_CONDS:
            raise ValueError(f"unknown branch condition {self.cond!r}")
        if self.cond != "al" and (self.src1 is None or self.src2 is None):
            raise ValueError("conditional branches need two comparands")

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SCALAR

    def text(self) -> str:
        if self.cond == "al":
            return f"b {self.target}"
        return f"b.{self.cond} {self.src1}, {self.src2}, {self.target}"


@dataclass(frozen=True)
class Halt(Instruction):
    """Terminate the workload on this core."""

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SCALAR

    def text(self) -> str:
        return "halt"


@dataclass(frozen=True)
class MSR(Instruction):
    """Write a dedicated EM-SIMD system register (paper §3.2).

    ``MSR <OI>, X1`` publishes phase behaviour; ``MSR <VL>, X2`` requests a
    vector-length reconfiguration, reporting success in ``<status>``.
    """

    sysreg: SystemRegister
    src: object  # scalar register name or Imm

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.EM_SIMD

    def text(self) -> str:
        return f"msr {self.sysreg}, {self.src}"


@dataclass(frozen=True)
class MRS(Instruction):
    """Read a dedicated EM-SIMD system register into a scalar register.

    Reads of ``<decision>`` may be transmitted speculatively (§4.1.1); all
    other reads synchronise with older EM-SIMD writes from the same core.
    """

    dst: str
    sysreg: SystemRegister

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.EM_SIMD

    def text(self) -> str:
        return f"mrs {self.dst}, {self.sysreg}"


@dataclass(frozen=True)
class WhileLT(Instruction):
    """``pdst = whilelt(counter, limit)`` — SVE tail predication.

    Sets the governing predicate so that ``min(VL_elements, limit - counter)``
    elements are active (zero when ``counter >= limit``).
    """

    pdst: PReg
    counter: str
    limit: str
    elem_bytes: int = 4

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SVE_COMPUTE

    def text(self) -> str:
        return f"whilelt {self.pdst}, {self.counter}, {self.limit}"


@dataclass(frozen=True)
class VOp(Instruction):
    """A vector compute instruction (``fadd``, ``fmul``, ``fmla``...).

    Sources may be vector registers, scalar-register broadcasts or
    immediates.  ``fma`` computes ``srcs[0] * srcs[1] + srcs[2]``;
    ``sel`` computes ``where(srcs[0] > 0, srcs[1], srcs[2])``.
    """

    op: str
    dst: VReg
    srcs: Tuple[VectorOperand, ...]
    pred: Optional[PReg] = None

    def __post_init__(self) -> None:
        if self.op not in VECTOR_OPS:
            raise ValueError(f"unknown vector op {self.op!r}")
        arity = {"dup": 1, "mov": 1, "abs": 1, "neg": 1, "sqrt": 1, "fma": 3, "sel": 3}
        expected = arity.get(self.op, 2)
        if len(self.srcs) != expected:
            raise ValueError(f"{self.op} takes {expected} source(s)")

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SVE_COMPUTE

    @property
    def flops_per_element(self) -> int:
        return VECTOR_OPS[self.op][0]

    @property
    def is_long_latency(self) -> bool:
        return VECTOR_OPS[self.op][1]

    def text(self) -> str:
        operands = ", ".join(str(s) for s in self.srcs)
        pred = f" ({self.pred})" if self.pred else ""
        return f"f{self.op} {self.dst}, {operands}{pred}"


@dataclass(frozen=True)
class VLoad(Instruction):
    """Vector load: ``dst = array[index : index + VL_elems*stride : stride]``.

    ``stride = 1`` is the contiguous common case; larger strides model
    interleaved layouts and touch proportionally more cache lines.
    """

    dst: VReg
    array: str
    index: str  # scalar register holding the element index
    pred: Optional[PReg] = None
    elem_bytes: int = 4
    stride: int = 1

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SVE_LDST

    @property
    def is_load(self) -> bool:
        return True

    def text(self) -> str:
        pred = f" ({self.pred})" if self.pred else ""
        stride = f", x{self.stride}" if self.stride != 1 else ""
        return f"ld1w {self.dst}, [{self.array}, {self.index}{stride}]{pred}"


@dataclass(frozen=True)
class VStore(Instruction):
    """Unit-stride vector store: ``array[index : index + VL_elems] = src``."""

    src: VReg
    array: str
    index: str
    pred: Optional[PReg] = None
    elem_bytes: int = 4

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SVE_LDST

    @property
    def is_load(self) -> bool:
        return False

    def text(self) -> str:
        pred = f" ({self.pred})" if self.pred else ""
        return f"st1w {self.src}, [{self.array}, {self.index}]{pred}"


@dataclass(frozen=True)
class VHReduce(Instruction):
    """Horizontal reduction of a vector register into a scalar register.

    Used when a vector length change forces a partial reduction to be
    spliced (paper §6.4) and at loop exits.
    """

    op: str
    dst: str  # scalar register
    src: VReg
    pred: Optional[PReg] = None

    def __post_init__(self) -> None:
        if self.op not in HREDUCE_OPS:
            raise ValueError(f"unknown reduction op {self.op!r}")

    @property
    def iclass(self) -> InstructionClass:
        return InstructionClass.SVE_COMPUTE

    def text(self) -> str:
        return f"f{self.op}v {self.dst}, {self.src}"
