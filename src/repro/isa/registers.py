"""The five dedicated EM-SIMD system registers (paper Table 1).

=============  =================================================
``<OI>``       Operational intensity of the current phase
``<decision>`` Suggested (requested) vector length, in lanes
``<VL>``       Configured (current) vector length, in lanes
``<status>``   Success/fail flag of the last ``MSR <VL>`` attempt
``<AL>``       Number of free SIMD lanes available (shared)
=============  =================================================

The paper expresses vector lengths at a granularity of one 128-bit lane
(``<VL> = 2`` means 256 bits).  ``<OI>`` carries a *pair* of intensities
(Eq. 5): ``issue`` — FLOPs per byte of SIMD ld/st *issue* traffic — and
``mem`` — FLOPs per byte of memory *footprint* (data reuse considered).
A zero ``<OI>`` marks the end of a phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: The residency levels of the memory hierarchy (paper Fig. 4 / §5.1).
#: ``OIValue`` is the single validation point for level names — everything
#: downstream (the roofline's hierarchical ceilings, trace serialisation)
#: may assume a level came from this set.
MEMORY_LEVELS = ("vec_cache", "l2", "dram")


class SystemRegister(enum.Enum):
    """Names of the dedicated EM-SIMD registers."""

    OI = "<OI>"
    DECISION = "<decision>"
    VL = "<VL>"
    STATUS = "<status>"
    AL = "<AL>"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Convenience aliases so call sites read like the paper's assembly.
OI = SystemRegister.OI
DECISION = SystemRegister.DECISION
VL = SystemRegister.VL
STATUS = SystemRegister.STATUS
AL = SystemRegister.AL


@dataclass(frozen=True)
class OIValue:
    """The operational-intensity pair written to ``<OI>`` (Eq. 5).

    ``issue``
        FLOPs per byte of data moved by SIMD ld/st *instructions*
        (``<OI>.issue``), bounding performance via the SIMD issue bandwidth.
    ``mem``
        FLOPs per byte of memory *footprint* with data reuse considered
        (``<OI>.mem``), bounding performance via cache/DRAM bandwidth.
    ``level``
        The memory level whose bandwidth ceiling applies — the compiler's
        footprint-residency hint enabling the *hierarchical* roofline the
        paper leverages (§5.1): ``"vec_cache"``, ``"l2"`` or ``"dram"``.

    A phase end is signalled by writing :data:`OIValue.ZERO`.
    """

    issue: float
    mem: float
    level: str = "dram"

    ZERO: "OIValue" = None  # type: ignore[assignment]  # set below

    def __post_init__(self) -> None:
        if self.issue < 0 or self.mem < 0:
            raise ValueError("operational intensities must be non-negative")
        if self.level not in MEMORY_LEVELS:
            raise ConfigurationError(
                f"unknown memory level {self.level!r}; "
                f"expected one of {MEMORY_LEVELS}"
            )

    @property
    def is_phase_end(self) -> bool:
        """True when this value marks the end of a phase (``<OI> = 0``)."""
        return self.issue == 0 and self.mem == 0

    @classmethod
    def uniform(cls, oi: float) -> "OIValue":
        """An OI pair with no data reuse (``issue == mem``, paper §6.3)."""
        return cls(issue=oi, mem=oi)

    def __str__(self) -> str:
        return f"({self.issue:g},{self.mem:g})"


OIValue.ZERO = OIValue(0.0, 0.0)
