"""Program container and builder.

A :class:`Program` is an immutable instruction sequence with resolved labels.
:class:`ProgramBuilder` is the emission API used by the compiler back end
and by hand-written tests/examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import AssemblyError
from repro.isa.instructions import (
    Branch,
    Halt,
    Instruction,
    InstructionClass,
    Label,
)


@dataclass(frozen=True)
class Program:
    """An assembled program: instructions plus a label->index map."""

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = "program"
    #: Compiler-provided metadata: ``phase_ois`` (list of OIValue),
    #: ``monitor`` / ``reconfig`` (sets of instrumentation instruction
    #: indices used for the Fig. 15 overhead accounting).
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for instr in self.instructions:
            if isinstance(instr, Branch) and instr.target not in self.labels:
                raise AssemblyError(
                    f"{self.name}: branch to undefined label {instr.target!r}"
                )
        if not any(isinstance(i, Halt) for i in self.instructions):
            raise AssemblyError(f"{self.name}: program has no halt instruction")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def target(self, label: str) -> int:
        """Instruction index of ``label``."""
        try:
            return self.labels[label]
        except KeyError as exc:
            raise AssemblyError(f"undefined label {label!r}") from exc

    def counts_by_class(self) -> Dict[InstructionClass, int]:
        """Static instruction counts per family (Labels excluded)."""
        counts: Dict[InstructionClass, int] = {cls: 0 for cls in InstructionClass}
        for instr in self.instructions:
            if isinstance(instr, Label):
                continue
            counts[instr.iclass] += 1
        return counts

    def disassemble(self) -> str:
        """Readable listing, one instruction per line."""
        lines: List[str] = []
        for index, instr in enumerate(self.instructions):
            if isinstance(instr, Label):
                lines.append(instr.text())
            else:
                lines.append(f"  {index:4d}  {instr.text()}")
        return "\n".join(lines)


class ProgramBuilder:
    """Incremental program construction with label management.

    >>> b = ProgramBuilder("demo")
    >>> b.label("top")
    >>> b.emit(Halt())
    >>> program = b.build()
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.meta: Dict[str, object] = {}
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fresh_counter = 0

    def emit(self, instruction: Instruction) -> None:
        """Append one instruction."""
        self._instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append several instructions."""
        for instruction in instructions:
            self.emit(instruction)

    def label(self, name: str) -> str:
        """Define ``name`` at the current position; returns the name."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        self._instructions.append(Label(name))
        return name

    def fresh_label(self, hint: str = "L") -> str:
        """Generate a unique label name (not yet placed)."""
        self._fresh_counter += 1
        return f".{hint}{self._fresh_counter}"

    @property
    def position(self) -> int:
        """Index the next emitted instruction will occupy."""
        return len(self._instructions)

    def build(self) -> Program:
        """Assemble into an immutable :class:`Program` (validates labels)."""
        return Program(
            instructions=tuple(self._instructions),
            labels=dict(self._labels),
            name=self.name,
            meta=dict(self.meta),
        )
